//! The sector checksum cache: O(dirty) registry CRCs for the write path.
//!
//! §3.2 keeps "a checksum of each memory block in the file cache", and the
//! seed implementation recomputed it over the page's full valid prefix on
//! every write — up to 8 KB of hashing for a 100-byte store. This cache
//! holds the CRC of each full 512-byte *sector* of a UBC page; a write
//! invalidates only the sectors its copy actually touched
//! ([`SectorCrcCache::note_write`]), and the page CRC is then spliced from
//! the sector CRCs with one fixed GF(2) shift operator plus a direct CRC of
//! the partial tail ([`SectorCrcCache::prefix_crc`]). CRC linearity makes
//! the spliced value bit-identical to `crc32(&page[..valid])`.
//!
//! The cache is **host-side volatile state**: it mirrors what the last
//! *legitimate* writes put in memory and dies with the kernel at a crash.
//! An injected wild store that scribbles a cached sector leaves the derived
//! registry CRC describing the legitimate contents — so the warm-reboot
//! scanner's comparison against actual memory detects the corruption. (The
//! seed's recompute-from-memory path would instead absorb the scribble into
//! the next write's checksum and silently recover corrupt data.)

use rio_mem::{crc32, crc32_update, CrcShift, PageNum, PhysMem, PAGE_SIZE};
use std::collections::HashMap;

/// Checksum granularity. 16 sectors per 8 KB page.
pub const SECTOR_BYTES: usize = 512;
/// Sectors per page.
pub const SECTORS_PER_PAGE: usize = PAGE_SIZE / SECTOR_BYTES;

/// Per-page cached sector CRCs; a mask bit set means that sector's CRC is
/// current with respect to the last legitimate write.
#[derive(Debug, Clone)]
struct PageSectors {
    crcs: [u32; SECTORS_PER_PAGE],
    valid_mask: u16,
}

impl PageSectors {
    fn empty() -> Self {
        PageSectors { crcs: [0; SECTORS_PER_PAGE], valid_mask: 0 }
    }
}

/// See module docs.
#[derive(Debug, Clone)]
pub struct SectorCrcCache {
    pages: HashMap<PageNum, PageSectors>,
    shift_sector: CrcShift,
    /// Sector recomputations avoided (full sectors served from cache).
    pub sectors_cached: u64,
    /// Sector CRCs recomputed from memory.
    pub sectors_recomputed: u64,
}

impl SectorCrcCache {
    /// An empty cache (built once per kernel boot).
    pub fn new() -> Self {
        SectorCrcCache {
            pages: HashMap::new(),
            shift_sector: CrcShift::for_len(SECTOR_BYTES as u64),
            sectors_cached: 0,
            sectors_recomputed: 0,
        }
    }

    /// Records that `page[start..end)` was just written through a legitimate
    /// path: the overlapped sectors' cached CRCs are stale.
    pub fn note_write(&mut self, page: PageNum, start: usize, end: usize) {
        if start >= end {
            return;
        }
        let end = end.min(PAGE_SIZE);
        let first = start / SECTOR_BYTES;
        let last = (end - 1) / SECTOR_BYTES;
        let entry = self.pages.entry(page).or_insert_with(PageSectors::empty);
        for s in first..=last {
            entry.valid_mask &= !(1u16 << s);
        }
    }

    /// Forgets everything about a page (eviction, unlink, page reuse).
    pub fn invalidate_page(&mut self, page: PageNum) {
        self.pages.remove(&page);
    }

    /// CRC of `page[..valid]`, recomputing only sectors whose cached CRC is
    /// stale. Bit-identical to `crc32(&mem.page(page)[..valid])`.
    pub fn prefix_crc(&mut self, mem: &PhysMem, page: PageNum, valid: u32) -> u32 {
        let valid = (valid as usize).min(PAGE_SIZE);
        let bytes = mem.page(page);
        let full = valid / SECTOR_BYTES;
        let entry = self.pages.entry(page).or_insert_with(PageSectors::empty);
        let mut crc = 0u32; // crc32 of the empty prefix
        for s in 0..full {
            let bit = 1u16 << s;
            if entry.valid_mask & bit == 0 {
                let off = s * SECTOR_BYTES;
                entry.crcs[s] = crc32(&bytes[off..off + SECTOR_BYTES]);
                entry.valid_mask |= bit;
                self.sectors_recomputed += 1;
            } else {
                self.sectors_cached += 1;
            }
            crc = self.shift_sector.apply(crc) ^ entry.crcs[s];
        }
        // Partial tail: append directly to the finalized prefix CRC — for
        // under one sector of bytes that is cheaper than a matrix build.
        if !valid.is_multiple_of(SECTOR_BYTES) {
            crc = crc32_update(crc ^ 0xFFFF_FFFF, &bytes[full * SECTOR_BYTES..valid])
                ^ 0xFFFF_FFFF;
        }
        crc
    }
}

impl Default for SectorCrcCache {
    fn default() -> Self {
        SectorCrcCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_mem::{MemBus, MemConfig};

    fn ubc_page(bus: &MemBus) -> PageNum {
        PageNum::containing(bus.layout().ubc.start)
    }

    #[test]
    fn prefix_crc_matches_direct_crc32() {
        let mut bus = MemBus::new(MemConfig::small());
        let page = ubc_page(&bus);
        let mut cache = SectorCrcCache::new();
        for (fill, valid) in [(0xA1u8, 100u32), (0xB2, 512), (0xC3, 513), (0xD4, 8192)] {
            bus.mem_mut().fill(page.base(), valid as u64, fill);
            cache.invalidate_page(page);
            let direct = crc32(&bus.mem().page(page)[..valid as usize]);
            assert_eq!(cache.prefix_crc(bus.mem(), page, valid), direct, "valid {valid}");
        }
    }

    #[test]
    fn dirty_span_recomputes_only_touched_sectors() {
        let mut bus = MemBus::new(MemConfig::small());
        let page = ubc_page(&bus);
        bus.mem_mut().fill(page.base(), PAGE_SIZE as u64, 0x5A);
        let mut cache = SectorCrcCache::new();
        let full = cache.prefix_crc(bus.mem(), page, PAGE_SIZE as u32);
        assert_eq!(cache.sectors_recomputed, 16);

        // A 100-byte write inside sector 3.
        let off = 3 * SECTOR_BYTES + 17;
        bus.mem_mut().fill(page.base() + off as u64, 100, 0xEE);
        cache.note_write(page, off, off + 100);
        let updated = cache.prefix_crc(bus.mem(), page, PAGE_SIZE as u32);
        assert_eq!(cache.sectors_recomputed, 17, "exactly one sector re-hashed");
        assert_ne!(updated, full);
        assert_eq!(updated, crc32(bus.mem().page(page)));
    }

    #[test]
    fn stale_cache_detects_wild_store() {
        // A write the cache never hears about (direct corruption): the
        // derived CRC keeps describing the legitimate contents.
        let mut bus = MemBus::new(MemConfig::small());
        let page = ubc_page(&bus);
        bus.mem_mut().fill(page.base(), PAGE_SIZE as u64, 0x42);
        let mut cache = SectorCrcCache::new();
        let legit = cache.prefix_crc(bus.mem(), page, PAGE_SIZE as u32);
        bus.mem_mut().flip_bit(page.base() + 2000, 3); // wild store
        // A later write to a *different* sector still derives the old CRC
        // for the corrupted sector — mismatching the corrupt memory.
        cache.note_write(page, 7000, 7100);
        let derived = cache.prefix_crc(bus.mem(), page, PAGE_SIZE as u32);
        assert_ne!(derived, crc32(bus.mem().page(page)));
        assert_ne!(legit, crc32(bus.mem().page(page)));
    }

    #[test]
    fn growing_valid_prefix_stays_exact() {
        let mut bus = MemBus::new(MemConfig::small());
        let page = ubc_page(&bus);
        let mut cache = SectorCrcCache::new();
        let mut valid = 0u32;
        for (i, grow) in [100u32, 412, 512, 1000, 3000, 3168].iter().enumerate() {
            let start = valid as usize;
            valid += grow;
            bus.mem_mut().fill(page.base() + start as u64, *grow as u64, 0x30 + i as u8);
            cache.note_write(page, start, valid as usize);
            assert_eq!(
                cache.prefix_crc(bus.mem(), page, valid),
                crc32(&bus.mem().page(page)[..valid as usize]),
                "valid {valid}"
            );
        }
    }
}
