//! Deterministic round-robin process scheduler for multi-client runs.
//!
//! The paper's Sdet exhibit (§5) is a *multi-user* benchmark: concurrent
//! scripts contending for the same file cache. Our kernel is a
//! single-threaded simulation, so concurrency is modelled the way a
//! mid-90s big-kernel-lock Unix actually behaved: exactly one client
//! executes kernel code at a time, and the interesting overlap is a
//! blocked client's **disk wait** hiding behind another client's CPU
//! burst.
//!
//! Mechanics:
//!
//! - Each client is a [`ClientStream`]: `step` runs one quantum (one
//!   syscall, or a short dependent sequence ending in at most one
//!   blocking point) against the shared kernel.
//! - Quanta are serialized on the simulated clock — CPU time never
//!   overlaps (one CPU). During a quantum the clock runs in deferred-wait
//!   mode ([`crate::clock::Clock::set_deferred_waits`]): a synchronous
//!   disk wait (fsync, dirty throttle) does not advance global time, it
//!   *blocks the client* until the recorded wake-up, and the rotor hands
//!   the CPU to the next runnable client.
//! - When no client is runnable the scheduler advances time to the
//!   earliest wake-up through [`Kernel::idle_until`], so background
//!   daemons keep firing on schedule inside the gap.
//! - The rotor's starting client is derived from the campaign seed
//!   (splitmix64) and every subsequent decision is a pure function of
//!   simulated state — the interleaving is byte-identical on any host,
//!   at any `RIO_THREADS`.
//!
//! Between quanta the scheduler asserts that no kernel lock is held:
//! clients may not yield mid-critical-section (the big-lock invariant).

use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::locks::LockId;
use rio_disk::SimTime;

/// One logical client driving syscalls against a shared [`Kernel`].
pub trait ClientStream {
    /// Runs one quantum. Returns `Ok(true)` while the client has more
    /// work, `Ok(false)` once its script is finished.
    ///
    /// A quantum should issue at most one *blocking* operation (fsync,
    /// throttled write): the scheduler applies the deferred wake-up after
    /// the quantum returns, so later ops inside the same quantum would
    /// not observe the wait.
    fn step(&mut self, kernel: &mut Kernel) -> Result<bool, KernelError>;
}

/// What the scheduler did: the quantum order and per-client accounting.
/// Drives the fairness and determinism tests.
#[derive(Debug, Clone, Default)]
pub struct SchedTrace {
    /// Client index of every quantum, in execution order.
    pub quanta: Vec<u32>,
    /// Times the scheduler had to advance the clock because every
    /// unfinished client was blocked on a disk wake-up.
    pub idle_hops: u64,
    /// Simulated time at which each client finished its script.
    pub finish_at: Vec<SimTime>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `clients` round-robin against `kernel` until every stream
/// finishes. The rotor's first pick is seed-derived; after a quantum the
/// rotor moves past the client that just ran, and a blocked client
/// (deferred disk wake-up in the future) is skipped until its time
/// arrives — first-blocked is first-woken, so throttle stalls resolve in
/// a deterministic fair order.
///
/// # Errors
///
/// The first client error (kernel crash/panic) aborts the run.
///
/// # Panics
///
/// If a client yields with a kernel lock still held.
pub fn run_clients(
    kernel: &mut Kernel,
    clients: &mut [&mut dyn ClientStream],
    seed: u64,
) -> Result<SchedTrace, KernelError> {
    let n = clients.len();
    let mut trace = SchedTrace {
        finish_at: vec![SimTime::ZERO; n],
        ..SchedTrace::default()
    };
    if n == 0 {
        return Ok(trace);
    }
    let mut ready_at = vec![SimTime::ZERO; n];
    let mut done = vec![false; n];
    let mut remaining = n;
    let mut rotor = (splitmix64(seed) % n as u64) as usize;
    while remaining > 0 {
        let now = kernel.machine.clock.now();
        // First runnable client at or after the rotor, wrapping once.
        let pick = (0..n)
            .map(|i| (rotor + i) % n)
            .find(|&c| !done[c] && ready_at[c] <= now);
        let Some(c) = pick else {
            // Everyone is blocked on a disk wake-up: hop to the earliest
            // one, daemon-honestly. The rotor does not move, so the
            // longest-waiting client (first in rotor order among the
            // now-runnable) goes next — fair FIFO wake-up.
            let wake = ready_at
                .iter()
                .zip(&done)
                .filter(|&(_, d)| !d)
                .map(|(&t, _)| t)
                .min()
                .expect("remaining > 0");
            trace.idle_hops += 1;
            kernel.idle_until(wake)?;
            continue;
        };
        kernel.machine.clock.set_deferred_waits(true);
        let result = clients[c].step(kernel);
        let deferred = kernel.machine.clock.take_deferred();
        kernel.machine.clock.set_deferred_waits(false);
        let more = result?;
        assert_locks_free(kernel);
        trace.quanta.push(c as u32);
        // Blocked until the deferred wake-up; otherwise runnable now.
        ready_at[c] = deferred.unwrap_or_else(|| kernel.machine.clock.now());
        if !more {
            done[c] = true;
            remaining -= 1;
            trace.finish_at[c] = ready_at[c].max(kernel.machine.clock.now());
        }
        rotor = (c + 1) % n;
    }
    Ok(trace)
}

fn assert_locks_free(kernel: &Kernel) {
    for id in [LockId::Fs, LockId::Alloc, LockId::Buf, LockId::Ubc] {
        assert!(
            !kernel.machine.locks.is_held(kernel.machine.bus.mem(), id),
            "client yielded the CPU holding the {id:?} lock"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::policy::Policy;

    struct Writer {
        fd: Option<crate::kernel::Fd>,
        name: String,
        ops: u32,
        payload: u8,
    }

    impl Writer {
        fn new(id: usize, ops: u32) -> Self {
            Writer {
                fd: None,
                name: format!("/c{id}"),
                ops,
                payload: id as u8 + 1,
            }
        }
    }

    impl ClientStream for Writer {
        fn step(&mut self, k: &mut Kernel) -> Result<bool, KernelError> {
            let Some(fd) = self.fd else {
                self.fd = Some(k.create(&self.name)?);
                return Ok(true);
            };
            if self.ops == 0 {
                return Ok(false);
            }
            self.ops -= 1;
            let buf = vec![self.payload; 512];
            k.write(fd, &buf)?;
            Ok(true)
        }
    }

    fn kernel(policy: Policy) -> Kernel {
        Kernel::mkfs_and_mount(&KernelConfig::small(policy)).expect("boot")
    }

    #[test]
    fn interleaving_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
            let mut a = Writer::new(0, 4);
            let mut b = Writer::new(1, 4);
            let mut clients: [&mut dyn ClientStream; 2] = [&mut a, &mut b];
            let trace = run_clients(&mut k, &mut clients, seed).unwrap();
            (trace.quanta, k.machine.clock.now())
        };
        assert_eq!(run(7), run(7), "same seed, same interleaving");
        let (q1, _) = run(1);
        let (q2, _) = run(2);
        assert_eq!(q1.len(), q2.len(), "same total work");
        // The first pick is the seed-derived rotor position.
        assert_eq!(u64::from(q1[0]), splitmix64(1) % 2);
        assert_eq!(u64::from(q2[0]), splitmix64(2) % 2);
    }

    #[test]
    fn round_robin_alternates_unblocked_clients() {
        let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
        // Warm the metadata caches (root dir, bitmaps, inode block) so no
        // client blocks on a cold disk read.
        k.create("/warm").unwrap();
        let mut a = Writer::new(0, 3);
        let mut b = Writer::new(1, 3);
        let mut clients: [&mut dyn ClientStream; 2] = [&mut a, &mut b];
        let trace = run_clients(&mut k, &mut clients, 0).unwrap();
        // Rio never blocks these small writes, so strict alternation.
        for w in trace.quanta.windows(2) {
            assert_ne!(w[0], w[1], "unblocked clients must alternate: {:?}", trace.quanta);
        }
    }

    #[test]
    fn all_clients_finish_and_times_are_monotonic() {
        let mut k = kernel(Policy::disk_write_through());
        let mut a = Writer::new(0, 5);
        let mut b = Writer::new(1, 2);
        let mut c = Writer::new(2, 8);
        let mut clients: [&mut dyn ClientStream; 3] = [&mut a, &mut b, &mut c];
        let trace = run_clients(&mut k, &mut clients, 42).unwrap();
        assert_eq!(trace.finish_at.len(), 3);
        let end = k.machine.clock.now();
        for (i, &t) in trace.finish_at.iter().enumerate() {
            assert!(t > SimTime::ZERO, "client {i} never finished");
            assert!(t <= end);
        }
        // 3 quanta overhead (create) + 5+2+8 writes + 3 finish probes.
        assert_eq!(trace.quanta.len(), 3 + 15 + 3);
    }

    #[test]
    fn disk_waits_overlap_other_clients_cpu() {
        // Write-through: every write waits for the disk. With the
        // scheduler, a blocked client's wait hides another client's CPU —
        // total time for 2 clients is less than 2× one client.
        let solo = {
            let mut k = kernel(Policy::disk_write_through());
            let mut a = Writer::new(0, 6);
            let mut clients: [&mut dyn ClientStream; 1] = [&mut a];
            run_clients(&mut k, &mut clients, 0).unwrap();
            k.machine.clock.now()
        };
        let duo = {
            let mut k = kernel(Policy::disk_write_through());
            let mut a = Writer::new(0, 6);
            let mut b = Writer::new(1, 6);
            let mut clients: [&mut dyn ClientStream; 2] = [&mut a, &mut b];
            run_clients(&mut k, &mut clients, 0).unwrap();
            k.machine.clock.now()
        };
        assert!(
            duo.as_micros() < solo.as_micros() * 2,
            "disk waits should overlap CPU: solo={solo:?} duo={duo:?}"
        );
    }
}
