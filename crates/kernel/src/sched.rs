//! Deterministic schedulers for multi-client runs: the legacy
//! run-to-completion rotor and the preemptive continuation scheduler.
//!
//! The paper's Sdet exhibit (§5) is a *multi-user* benchmark: concurrent
//! scripts contending for the same file cache. Our kernel is a
//! single-threaded simulation, so concurrency is modelled the way a
//! mid-90s big-kernel-lock Unix actually behaved: exactly one client
//! executes kernel code at a time, and the interesting overlap is a
//! blocked client's **disk wait** hiding behind another client's CPU
//! burst.
//!
//! Two schedulers share that clock machinery:
//!
//! - [`run_clients`] (legacy, PR 5): each [`ClientStream::step`] quantum
//!   runs one whole blocking op to completion; between quanta every
//!   kernel lock is asserted free. Single-client paths stay
//!   byte-identical to the pre-scheduler kernel.
//! - [`PreemptSched`] (this PR): syscalls execute as resumable
//!   continuations ([`crate::preempt::SyscallCont`]) that yield the CPU
//!   at their actual block points — buffer-cache miss, registry I/O,
//!   dirty-throttle stall, fsync wait — with kernel state half-mutated
//!   and locks ([`crate::preempt`]) legitimately held across the yield.
//!   Lock contention is resolved by a deterministic FIFO wait queue.
//!
//! Shared mechanics:
//!
//! - Quanta are serialized on the simulated clock — CPU time never
//!   overlaps (one CPU). During a quantum the clock runs in deferred-wait
//!   mode ([`crate::clock::Clock::set_deferred_waits`]): a synchronous
//!   disk wait (fsync, dirty throttle) does not advance global time, it
//!   *blocks the client* until the recorded wake-up, and the rotor hands
//!   the CPU to the next runnable client.
//! - When no client is runnable the scheduler advances time to the
//!   earliest wake-up through [`Kernel::idle_until`], so background
//!   daemons keep firing on schedule inside the gap.
//! - The rotor's starting client is derived from the campaign seed
//!   (splitmix64) and every subsequent decision is a pure function of
//!   simulated state — the interleaving is byte-identical on any host,
//!   at any `RIO_THREADS`.

use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::locks::LockId;
use crate::preempt::{SyscallCont, SyscallOp, SyscallRet, Yield};
use rio_disk::SimTime;
use std::collections::BTreeSet;

/// One logical client driving syscalls against a shared [`Kernel`].
pub trait ClientStream {
    /// Runs one quantum. Returns `Ok(true)` while the client has more
    /// work, `Ok(false)` once its script is finished.
    ///
    /// A quantum should issue at most one *blocking* operation (fsync,
    /// throttled write): the scheduler applies the deferred wake-up after
    /// the quantum returns, so later ops inside the same quantum would
    /// not observe the wait.
    fn step(&mut self, kernel: &mut Kernel) -> Result<bool, KernelError>;
}

/// What the scheduler did: the quantum order and per-client accounting.
/// Drives the fairness and determinism tests.
#[derive(Debug, Clone, Default)]
pub struct SchedTrace {
    /// Client index of every quantum, in execution order.
    pub quanta: Vec<u32>,
    /// Times the scheduler had to advance the clock because every
    /// unfinished client was blocked on a disk wake-up.
    pub idle_hops: u64,
    /// Simulated time at which each client finished its script.
    pub finish_at: Vec<SimTime>,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `clients` round-robin against `kernel` until every stream
/// finishes. The rotor's first pick is seed-derived; after a quantum the
/// rotor moves past the client that just ran, and a blocked client
/// (deferred disk wake-up in the future) is skipped until its time
/// arrives — first-blocked is first-woken, so throttle stalls resolve in
/// a deterministic fair order.
///
/// # Errors
///
/// The first client error (kernel crash/panic) aborts the run.
///
/// # Panics
///
/// If a client yields with a kernel lock still held.
pub fn run_clients(
    kernel: &mut Kernel,
    clients: &mut [&mut dyn ClientStream],
    seed: u64,
) -> Result<SchedTrace, KernelError> {
    let n = clients.len();
    let mut trace = SchedTrace {
        finish_at: vec![SimTime::ZERO; n],
        ..SchedTrace::default()
    };
    if n == 0 {
        return Ok(trace);
    }
    let mut ready_at = vec![SimTime::ZERO; n];
    let mut done = vec![false; n];
    // Quantum number at which each client last blocked: the idle-hop
    // tie-break below wakes the longest-blocked client first.
    let mut blocked_seq = vec![0u64; n];
    let mut quantum_no = 0u64;
    let mut remaining = n;
    let mut rotor = (splitmix64(seed) % n as u64) as usize;
    while remaining > 0 {
        let now = kernel.machine.clock.now();
        // First runnable client at or after the rotor, wrapping once.
        let pick = (0..n)
            .map(|i| (rotor + i) % n)
            .find(|&c| !done[c] && ready_at[c] <= now);
        let Some(c) = pick else {
            // Everyone is blocked on a disk wake-up: hop to the earliest
            // one, daemon-honestly. Among the clients waking at that
            // instant, hand the rotor to the one that blocked earliest —
            // rotor position is an accident of who ran last, and leaving
            // it put would wake whichever tied client happens to sit
            // next in rotor order instead of the longest-waiting one.
            let wake = ready_at
                .iter()
                .zip(&done)
                .filter(|&(_, d)| !d)
                .map(|(&t, _)| t)
                .min()
                .expect("remaining > 0");
            rotor = (0..n)
                .filter(|&c| !done[c] && ready_at[c] == wake)
                .min_by_key(|&c| (blocked_seq[c], c))
                .expect("some client wakes at the minimum");
            trace.idle_hops += 1;
            kernel.idle_until(wake)?;
            continue;
        };
        kernel.machine.clock.set_deferred_waits(true);
        let result = clients[c].step(kernel);
        let deferred = kernel.machine.clock.take_deferred();
        kernel.machine.clock.set_deferred_waits(false);
        let more = result?;
        assert_locks_free(kernel);
        trace.quanta.push(c as u32);
        quantum_no += 1;
        // Blocked until the deferred wake-up; otherwise runnable now.
        ready_at[c] = deferred.unwrap_or_else(|| kernel.machine.clock.now());
        if deferred.is_some() {
            blocked_seq[c] = quantum_no;
        }
        if !more {
            done[c] = true;
            remaining -= 1;
            trace.finish_at[c] = ready_at[c].max(kernel.machine.clock.now());
        }
        rotor = (c + 1) % n;
    }
    Ok(trace)
}

fn assert_locks_free(kernel: &Kernel) {
    for id in LockId::ALL {
        assert!(
            !kernel.machine.locks.is_held(kernel.machine.bus.mem(), id),
            "client yielded the CPU holding the {id:?} lock"
        );
    }
}

/// One logical client of the preemptive scheduler: a script that emits
/// syscalls one at a time and sees each result before choosing the next.
pub trait PreemptClient {
    /// The next syscall to run, given the previous one's result (`None`
    /// on the first call, or when the previous op failed benignly — the
    /// client tracks which op that was). Returning `None` retires the
    /// client.
    fn next_op(&mut self, prev: Option<&SyscallRet>) -> Option<SyscallOp>;

    /// The simulated time at which the client's *next* op arrives.
    /// `None` (the default) means "ready immediately" — the closed-loop
    /// behaviour every pre-existing client keeps. Open-loop workloads
    /// return their seeded arrival time: the scheduler parks the client
    /// until then (or until its current op's trailing wait resolves,
    /// whichever is later) instead of calling [`PreemptClient::next_op`]
    /// back-to-back. Consulted whenever the client has no op in flight:
    /// at scheduler start, after an op completes, and after a benign
    /// failure.
    fn next_op_at(&mut self) -> Option<SimTime> {
        None
    }

    /// Called once per completed op, with the op's result and the
    /// simulated time at which it *truly* finished — including any
    /// trailing deferred wait (fsync drain, dirty-throttle stall), which
    /// `next_op`'s view of the clock would miss. Open-loop workloads
    /// record `at − arrival` as the op's latency; the default does
    /// nothing.
    fn op_completed(&mut self, _ret: &SyscallRet, _at: SimTime) {}
}

/// Why a client is not currently on the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// Runnable immediately.
    Ready,
    /// Blocked until this disk wake-up time.
    Disk(SimTime),
    /// Blocked in this lock's FIFO; runnable once the lock is reserved
    /// for the client.
    Lock(LockId),
    /// Script complete.
    Finished,
}

/// Outcome of one [`PreemptSched::step_once`] decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedStep {
    /// This client ran a quantum.
    Ran(u32),
    /// Nobody was runnable; the clock hopped to the earliest disk wake.
    Idle,
    /// Every client has finished its script.
    Done,
}

/// The preemptive continuation scheduler. Unlike [`run_clients`], a
/// quantum ends wherever the syscall actually blocks — so between
/// quanta, clients hold locks and carry half-mutated kernel state in
/// their parked [`SyscallCont`]s. Fault campaigns inject *between*
/// quanta, which is exactly when that in-flight state is exposed.
///
/// Exposed as a stepwise object (not just a run loop) so campaigns can
/// interleave warm-up, injection, and watchdog logic with scheduling.
/// `Clone` freezes the whole scheduling state — parked continuations,
/// rotor, trace — which is how the scale campaign checkpoints a warmed
/// multi-client machine and forks it per trial.
#[derive(Debug, Clone)]
pub struct PreemptSched {
    run: Vec<Run>,
    conts: Vec<Option<SyscallCont>>,
    last_ret: Vec<Option<SyscallRet>>,
    rotor: usize,
    check_invariants: bool,
    /// Clients runnable right now (`Run::Ready`, expired disk waits, and
    /// lock waiters whose reservation came through), keyed by index so
    /// `range(rotor..)` finds the rotor pick in O(log n) — the per-quantum
    /// O(clients) scan this replaced made every quantum linear in the
    /// client count, which the 1000-client server exhibit turns into
    /// O(n²) total work.
    ready: BTreeSet<usize>,
    /// Time-ordered wake heap for disk-blocked clients: the earliest
    /// entry is the next wake-up, so expiring waits and idle hops are
    /// O(log n) instead of a full scan.
    disk_waits: BTreeSet<(SimTime, usize)>,
    /// Retired-client count (O(1) `all_finished`).
    finished: usize,
    /// One-time arrival priming (open-loop clients) done.
    primed: bool,
    /// Re-derive every pick with the old O(n) linear scan and assert the
    /// indexed structures agree — the regression gate for this refactor.
    cross_check: bool,
    /// Quantum order and accounting, same shape as the legacy trace.
    pub trace: SchedTrace,
}

impl PreemptSched {
    /// A scheduler for `n` clients. The rotor's first pick is
    /// seed-derived. `check_invariants` enables the between-quanta
    /// lock-word/owner consistency check — leave it off in fault
    /// campaigns, where injected faults legitimately desynchronize the
    /// two.
    #[must_use]
    pub fn new(n: usize, seed: u64, check_invariants: bool) -> Self {
        PreemptSched {
            run: vec![Run::Ready; n],
            conts: (0..n).map(|_| None).collect(),
            last_ret: (0..n).map(|_| None).collect(),
            rotor: if n == 0 {
                0
            } else {
                (splitmix64(seed) % n as u64) as usize
            },
            check_invariants,
            ready: (0..n).collect(),
            disk_waits: BTreeSet::new(),
            finished: 0,
            primed: false,
            cross_check: false,
            trace: SchedTrace {
                finish_at: vec![SimTime::ZERO; n],
                ..SchedTrace::default()
            },
        }
    }

    /// Enables per-pick cross-checking against the retired O(n) linear
    /// rotor scan: every scheduling decision made through the indexed
    /// ready set and wake heap is re-derived the old way and asserted
    /// identical. Regression-test instrumentation; off by default.
    pub fn set_cross_check(&mut self, on: bool) {
        self.cross_check = on;
    }

    /// How many clients currently have a parked in-flight syscall.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.conts.iter().filter(|c| c.is_some()).count()
    }

    /// The locks held by client `c`'s parked continuation, if any.
    #[must_use]
    pub fn held_locks(&self, c: usize) -> &[LockId] {
        self.conts[c].as_ref().map_or(&[], |cont| cont.held_locks())
    }

    /// Whether client `c` has retired.
    #[must_use]
    pub fn is_finished(&self, c: usize) -> bool {
        matches!(self.run[c], Run::Finished)
    }

    /// Whether every client has retired.
    #[must_use]
    pub fn all_finished(&self) -> bool {
        self.finished == self.run.len()
    }

    /// Records client `c`'s new run state and files it in the matching
    /// index structure. Lock-blocked clients live in neither set: their
    /// wake-up is the lock hand-off, re-checked each pick (O(#locks)).
    fn park(&mut self, c: usize, state: Run) {
        self.run[c] = state;
        match state {
            Run::Ready => {
                self.ready.insert(c);
            }
            Run::Disk(t) => {
                self.disk_waits.insert((t, c));
            }
            Run::Lock(_) => {}
            Run::Finished => {
                self.finished += 1;
            }
        }
    }

    /// The retired per-quantum O(n) pick: first eligible client at or
    /// after the rotor, wrapping once. Kept as the cross-check reference
    /// the indexed pick is asserted against.
    fn reference_pick(&self, kernel: &Kernel, now: SimTime) -> Option<usize> {
        let n = self.run.len();
        (0..n).map(|i| (self.rotor + i) % n).find(|&c| match self.run[c] {
            Run::Ready => true,
            Run::Disk(t) => t <= now,
            Run::Lock(l) => kernel.lock_reserved_for(l) == Some(c as u32),
            Run::Finished => false,
        })
    }

    /// Makes one scheduling decision: runs the first eligible client at
    /// or after the rotor for one quantum, or hops the clock to the
    /// earliest disk wake-up if nobody is runnable.
    ///
    /// # Errors
    ///
    /// A kernel crash (or any client error while the kernel is crashed)
    /// aborts the run; benign syscall errors are absorbed — the failed
    /// op's continuation is dropped and the client is asked for its next
    /// op with `prev = None`.
    ///
    /// # Panics
    ///
    /// On scheduler deadlock (every unfinished client lock-blocked with
    /// no reservation) — impossible by construction, see
    /// [`crate::preempt`] — or, with `check_invariants`, on a lock
    /// word/owner mismatch between quanta.
    pub fn step_once(
        &mut self,
        kernel: &mut Kernel,
        clients: &mut [&mut dyn PreemptClient],
    ) -> Result<SchedStep, KernelError> {
        let n = self.run.len();
        assert_eq!(clients.len(), n, "client count changed mid-run");
        if self.all_finished() {
            return Ok(SchedStep::Done);
        }
        let now = kernel.machine.clock.now();
        if !self.primed {
            // One-time arrival priming: open-loop clients whose first op
            // arrives in the future start parked, not ready.
            self.primed = true;
            for (c, client) in clients.iter_mut().enumerate() {
                if self.run[c] == Run::Ready {
                    if let Some(t) = client.next_op_at() {
                        if t > now {
                            self.ready.remove(&c);
                            self.run[c] = Run::Disk(t);
                            self.disk_waits.insert((t, c));
                        }
                    }
                }
            }
        }
        // Expire disk waits that have come due into the ready set.
        while let Some(&(t, c)) = self.disk_waits.first() {
            if t > now {
                break;
            }
            self.disk_waits.pop_first();
            self.ready.insert(c);
        }
        // A lock hand-off makes its reserved waiter runnable. Reservations
        // persist until the reserved client runs, so once inserted the
        // entry never goes stale.
        for l in LockId::ALL {
            if let Some(r) = kernel.lock_reserved_for(l) {
                let c = r as usize;
                if c < n && self.run[c] == Run::Lock(l) {
                    self.ready.insert(c);
                }
            }
        }
        // First ready client at or after the rotor, wrapping once: the
        // smallest index ≥ rotor, else the smallest overall.
        let pick = self
            .ready
            .range(self.rotor..)
            .next()
            .or_else(|| self.ready.iter().next())
            .copied();
        if self.cross_check {
            assert_eq!(
                pick,
                self.reference_pick(kernel, now),
                "indexed pick diverged from the linear rotor scan (rotor={}, now={now:?})",
                self.rotor,
            );
        }
        let Some(c) = pick else {
            let wake = self.disk_waits.first().map(|&(t, _)| t);
            let wake = wake.expect(
                "scheduler deadlock: all unfinished clients lock-blocked with no reservation",
            );
            if self.cross_check {
                let reference = self
                    .run
                    .iter()
                    .filter_map(|r| match r {
                        Run::Disk(t) => Some(*t),
                        _ => None,
                    })
                    .min();
                assert_eq!(Some(wake), reference, "wake heap diverged from linear min");
            }
            self.trace.idle_hops += 1;
            kernel.idle_until(wake)?;
            return Ok(SchedStep::Idle);
        };
        self.ready.remove(&c);
        if self.conts[c].is_none() {
            let prev = self.last_ret[c].take();
            match clients[c].next_op(prev.as_ref()) {
                None => {
                    self.park(c, Run::Finished);
                    self.trace.finish_at[c] = kernel.machine.clock.now();
                    self.rotor = (c + 1) % n;
                    return Ok(if self.all_finished() {
                        SchedStep::Done
                    } else {
                        SchedStep::Ran(c as u32)
                    });
                }
                Some(op) => self.conts[c] = Some(SyscallCont::new(op)),
            }
        }
        kernel.cur_client = Some(c as u32);
        kernel.machine.clock.set_deferred_waits(true);
        let res = self.conts[c].as_mut().expect("installed above").resume(kernel);
        let deferred = kernel.machine.clock.take_deferred();
        kernel.machine.clock.set_deferred_waits(false);
        kernel.cur_client = None;
        self.trace.quanta.push(c as u32);
        self.rotor = (c + 1) % n;
        match res {
            Ok(Yield::Done(ret)) => {
                self.conts[c] = None;
                // The op truly completes at its trailing deferred wait
                // (fsync drain, throttle stall), not at the quantum end.
                let done_at = deferred.unwrap_or_else(|| kernel.machine.clock.now());
                clients[c].op_completed(&ret, done_at);
                self.last_ret[c] = Some(ret);
                // Park until both the trailing wait and the next op's
                // open-loop arrival (if any) have passed. A trailing wait
                // still blocks the client past the op's completion.
                let arrival = clients[c].next_op_at();
                let wake = match (deferred, arrival) {
                    (None, None) => None,
                    (d, a) => Some(
                        d.unwrap_or(SimTime::ZERO).max(a.unwrap_or(SimTime::ZERO)),
                    ),
                };
                self.park(c, wake.map_or(Run::Ready, Run::Disk));
            }
            Ok(Yield::Disk) => {
                let t = deferred.unwrap_or_else(|| kernel.machine.clock.now());
                self.park(c, Run::Disk(t));
            }
            Ok(Yield::Lock(l)) => {
                self.park(c, Run::Lock(l));
            }
            Err(e) => {
                self.conts[c] = None;
                self.last_ret[c] = None;
                if kernel.is_crashed() {
                    return Err(e);
                }
                // Benign failure (Exists, NotFound, ...): the client
                // sees `prev = None` and decides what to do next — at
                // its next open-loop arrival, if it has one.
                let arrival = clients[c].next_op_at();
                self.park(c, arrival.map_or(Run::Ready, Run::Disk));
            }
        }
        if self.check_invariants {
            Self::assert_lock_owner_consistency(kernel);
        }
        Ok(SchedStep::Ran(c as u32))
    }

    /// Between quanta the lock *words* in simulated memory and the
    /// host-side owner table must agree: held iff owned. Fault hooks
    /// (skipped lock ops) legitimately break this, so campaigns run with
    /// the check disabled.
    fn assert_lock_owner_consistency(kernel: &Kernel) {
        if kernel.is_crashed() {
            return;
        }
        for id in LockId::ALL {
            let word = kernel.machine.locks.is_held(kernel.machine.bus.mem(), id);
            let owner = kernel.lock_owner(id);
            assert_eq!(
                word,
                owner.is_some(),
                "{id:?}: lock word ({word}) disagrees with owner table ({owner:?})"
            );
        }
    }
}

/// Runs `clients` under the preemptive scheduler until every script
/// finishes. Convenience wrapper over [`PreemptSched::step_once`] for
/// fault-free runs (campaigns drive the scheduler stepwise instead).
///
/// # Errors
///
/// The first kernel crash aborts the run.
pub fn run_preemptive(
    kernel: &mut Kernel,
    clients: &mut [&mut dyn PreemptClient],
    seed: u64,
    check_invariants: bool,
) -> Result<SchedTrace, KernelError> {
    let mut sched = PreemptSched::new(clients.len(), seed, check_invariants);
    while !matches!(sched.step_once(kernel, clients)?, SchedStep::Done) {}
    Ok(sched.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::policy::Policy;

    struct Writer {
        fd: Option<crate::kernel::Fd>,
        name: String,
        ops: u32,
        payload: u8,
    }

    impl Writer {
        fn new(id: usize, ops: u32) -> Self {
            Writer {
                fd: None,
                name: format!("/c{id}"),
                ops,
                payload: id as u8 + 1,
            }
        }
    }

    impl ClientStream for Writer {
        fn step(&mut self, k: &mut Kernel) -> Result<bool, KernelError> {
            let Some(fd) = self.fd else {
                self.fd = Some(k.create(&self.name)?);
                return Ok(true);
            };
            if self.ops == 0 {
                return Ok(false);
            }
            self.ops -= 1;
            let buf = vec![self.payload; 512];
            k.write(fd, &buf)?;
            Ok(true)
        }
    }

    fn kernel(policy: Policy) -> Kernel {
        Kernel::mkfs_and_mount(&KernelConfig::small(policy)).expect("boot")
    }

    #[test]
    fn interleaving_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
            let mut a = Writer::new(0, 4);
            let mut b = Writer::new(1, 4);
            let mut clients: [&mut dyn ClientStream; 2] = [&mut a, &mut b];
            let trace = run_clients(&mut k, &mut clients, seed).unwrap();
            (trace.quanta, k.machine.clock.now())
        };
        assert_eq!(run(7), run(7), "same seed, same interleaving");
        let (q1, _) = run(1);
        let (q2, _) = run(2);
        assert_eq!(q1.len(), q2.len(), "same total work");
        // The first pick is the seed-derived rotor position.
        assert_eq!(u64::from(q1[0]), splitmix64(1) % 2);
        assert_eq!(u64::from(q2[0]), splitmix64(2) % 2);
    }

    #[test]
    fn round_robin_alternates_unblocked_clients() {
        let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
        // Warm the metadata caches (root dir, bitmaps, inode block) so no
        // client blocks on a cold disk read.
        k.create("/warm").unwrap();
        let mut a = Writer::new(0, 3);
        let mut b = Writer::new(1, 3);
        let mut clients: [&mut dyn ClientStream; 2] = [&mut a, &mut b];
        let trace = run_clients(&mut k, &mut clients, 0).unwrap();
        // Rio never blocks these small writes, so strict alternation.
        for w in trace.quanta.windows(2) {
            assert_ne!(w[0], w[1], "unblocked clients must alternate: {:?}", trace.quanta);
        }
    }

    #[test]
    fn all_clients_finish_and_times_are_monotonic() {
        let mut k = kernel(Policy::disk_write_through());
        let mut a = Writer::new(0, 5);
        let mut b = Writer::new(1, 2);
        let mut c = Writer::new(2, 8);
        let mut clients: [&mut dyn ClientStream; 3] = [&mut a, &mut b, &mut c];
        let trace = run_clients(&mut k, &mut clients, 42).unwrap();
        assert_eq!(trace.finish_at.len(), 3);
        let end = k.machine.clock.now();
        for (i, &t) in trace.finish_at.iter().enumerate() {
            assert!(t > SimTime::ZERO, "client {i} never finished");
            assert!(t <= end);
        }
        // 3 quanta overhead (create) + 5+2+8 writes + 3 finish probes.
        assert_eq!(trace.quanta.len(), 3 + 15 + 3);
    }

    #[test]
    fn disk_waits_overlap_other_clients_cpu() {
        // Write-through: every write waits for the disk. With the
        // scheduler, a blocked client's wait hides another client's CPU —
        // total time for 2 clients is less than 2× one client.
        let solo = {
            let mut k = kernel(Policy::disk_write_through());
            let mut a = Writer::new(0, 6);
            let mut clients: [&mut dyn ClientStream; 1] = [&mut a];
            run_clients(&mut k, &mut clients, 0).unwrap();
            k.machine.clock.now()
        };
        let duo = {
            let mut k = kernel(Policy::disk_write_through());
            let mut a = Writer::new(0, 6);
            let mut b = Writer::new(1, 6);
            let mut clients: [&mut dyn ClientStream; 2] = [&mut a, &mut b];
            run_clients(&mut k, &mut clients, 0).unwrap();
            k.machine.clock.now()
        };
        assert!(
            duo.as_micros() < solo.as_micros() * 2,
            "disk waits should overlap CPU: solo={solo:?} duo={duo:?}"
        );
    }

    /// A client that blocks until scripted absolute times (`None` = a
    /// quantum that stays runnable): exercises the legacy scheduler's
    /// idle-hop path without real disk traffic.
    struct Sleeper {
        wakes: Vec<Option<u64>>,
        next: usize,
    }

    impl ClientStream for Sleeper {
        fn step(&mut self, k: &mut Kernel) -> Result<bool, KernelError> {
            let Some(&w) = self.wakes.get(self.next) else {
                return Ok(false);
            };
            self.next += 1;
            if let Some(us) = w {
                k.machine.clock.wait_until(SimTime::from_micros(us));
            }
            Ok(true)
        }
    }

    #[test]
    fn idle_hop_wakes_longest_blocked_client_first() {
        // Three clients tie on a wake-up time. Block order: c2 first
        // (quantum 3), then c1 (quantum 5), then c0 blocks last at a
        // later time (quantum 6). The rotor sits just past c0 when the
        // idle hop fires, so rotor order alone would wake c1 — but c2
        // has waited longer. The fairness pin: longest-blocked wins the
        // tie.
        let seed = (0..).find(|&s| splitmix64(s).is_multiple_of(3)).unwrap();
        let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
        // Wake times must be in the simulated future — boot already
        // advanced the clock.
        let base = k.machine.clock.now().as_micros();
        let mut c0 = Sleeper {
            wakes: vec![None, None, Some(base + 200)],
            next: 0,
        };
        let mut c1 = Sleeper {
            wakes: vec![None, Some(base + 100)],
            next: 0,
        };
        let mut c2 = Sleeper {
            wakes: vec![Some(base + 100)],
            next: 0,
        };
        let mut clients: [&mut dyn ClientStream; 3] = [&mut c0, &mut c1, &mut c2];
        let trace = run_clients(&mut k, &mut clients, seed).unwrap();
        assert_eq!(&trace.quanta[..6], &[0, 1, 2, 0, 1, 0]);
        assert_eq!(
            trace.quanta[6], 2,
            "after the idle hop the longest-blocked tied client (c2) must run first: {:?}",
            trace.quanta
        );
        assert_eq!(trace.quanta, vec![0, 1, 2, 0, 1, 0, 2, 1, 0]);
        assert_eq!(trace.idle_hops, 2);
    }

    /// A scripted [`PreemptClient`]: runs a fixed op list, remembers
    /// results, requires every op to succeed.
    struct Script {
        ops: Vec<SyscallOp>,
        next: usize,
        rets: Vec<SyscallRet>,
        started: bool,
    }

    impl Script {
        fn new(ops: Vec<SyscallOp>) -> Self {
            Script {
                ops,
                next: 0,
                rets: Vec::new(),
                started: false,
            }
        }
    }

    impl PreemptClient for Script {
        fn next_op(&mut self, prev: Option<&SyscallRet>) -> Option<SyscallOp> {
            if self.started {
                let prev = prev.expect("scripted ops must succeed");
                self.rets.push(prev.clone());
            }
            self.started = true;
            let op = self.ops.get(self.next).cloned();
            self.next += 1;
            op
        }
    }

    #[test]
    fn preemptive_single_client_matches_direct_syscalls() {
        // One client, no contention: the continuation path must land on
        // the same final state as calling the syscalls directly. (The
        // clocks legitimately differ: the direct path waits for the disk
        // *inside* the op, the preemptive path defers the wait to the
        // scheduler, which shifts when later disk requests are issued.)
        let payload = vec![7u8; 3 * 4096 + 123];
        let direct = {
            let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
            let fd = k.create("/a").unwrap();
            k.write(fd, &payload).unwrap();
            k.fsync(fd).unwrap();
            k.close(fd).unwrap();
            k.mkdir("/d").unwrap();
            let names = k.readdir("/").unwrap();
            (k.file_contents("/a").unwrap(), names)
        };
        let preempted = {
            let mut k = kernel(Policy::rio(rio_core::RioMode::Protected));
            let mut s = Script::new(vec![SyscallOp::Create("/a".into())]);
            let mut clients: [&mut dyn PreemptClient; 1] = [&mut s];
            run_preemptive(&mut k, &mut clients, 0, true).unwrap();
            let SyscallRet::Fd(fd) = s.rets[0] else {
                panic!("create returns an fd")
            };
            let mut s2 = Script::new(vec![
                SyscallOp::Write {
                    fd,
                    data: payload.clone(),
                },
                SyscallOp::Fsync(fd),
                SyscallOp::Close(fd),
                SyscallOp::Mkdir("/d".into()),
                SyscallOp::Readdir("/".into()),
            ]);
            let mut clients: [&mut dyn PreemptClient; 1] = [&mut s2];
            run_preemptive(&mut k, &mut clients, 0, true).unwrap();
            let SyscallRet::Names(ref names) = s2.rets[4] else {
                panic!("readdir returns names")
            };
            (k.file_contents("/a").unwrap(), names.clone())
        };
        assert_eq!(direct.0, preempted.0, "file contents diverge");
        assert_eq!(direct.1, preempted.1, "directory listing diverges");
    }

    #[test]
    fn cold_namei_blocks_holding_fs_and_contender_queues() {
        // On a cold metadata cache the first client's namei goes to disk
        // holding Fs; the second client's create must hit the FIFO.
        let mut k = kernel(Policy::disk_write_through());
        let mut a = Script::new(vec![SyscallOp::Create("/a".into())]);
        let mut b = Script::new(vec![SyscallOp::Create("/b".into())]);
        let mut clients: [&mut dyn PreemptClient; 2] = [&mut a, &mut b];
        let trace = run_preemptive(&mut k, &mut clients, 0, true).unwrap();
        assert!(k.stats.locks_contended >= 1, "no Fs contention observed");
        assert!(k.stats.locks_acquired >= 2);
        assert_eq!(k.lock_waiters(LockId::Fs), 0, "queue must drain");
        assert_eq!(k.lock_owner(LockId::Fs), None, "lock must be released");
        assert!(
            trace.quanta.len() > 4,
            "mid-syscall yields should multiply quanta: {:?}",
            trace.quanta
        );
        let names = k.readdir("/").unwrap();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn preemptive_interleaving_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut k = kernel(Policy::disk_write_through());
            let mut scripts: Vec<Script> = (0..3)
                .map(|i| {
                    Script::new(vec![
                        SyscallOp::Create(format!("/f{i}")),
                        SyscallOp::Mkdir(format!("/d{i}")),
                    ])
                })
                .collect();
            let mut clients: Vec<&mut dyn PreemptClient> = scripts
                .iter_mut()
                .map(|s| s as &mut dyn PreemptClient)
                .collect();
            let trace = run_preemptive(&mut k, &mut clients, seed, true).unwrap();
            (trace.quanta, k.machine.clock.now())
        };
        assert_eq!(run(9), run(9), "same seed, same interleaving");
        let (q1, t1) = run(3);
        let (q2, t2) = run(4);
        assert_eq!(u64::from(q1[0]), splitmix64(3) % 3);
        assert_eq!(u64::from(q2[0]), splitmix64(4) % 3);
        assert_eq!(t1, t2, "same work, same total time");
    }

    fn run_cross_checked(n: usize, seed: u64) -> Vec<u32> {
        let mut k = kernel(Policy::disk_write_through());
        let mut scripts: Vec<Script> = (0..n)
            .map(|i| {
                Script::new(vec![
                    SyscallOp::Create(format!("/f{i}")),
                    SyscallOp::Mkdir(format!("/d{i}")),
                ])
            })
            .collect();
        let mut clients: Vec<&mut dyn PreemptClient> = scripts
            .iter_mut()
            .map(|s| s as &mut dyn PreemptClient)
            .collect();
        let mut sched = PreemptSched::new(n, seed, true);
        sched.set_cross_check(true);
        while !matches!(
            sched.step_once(&mut k, &mut clients).unwrap(),
            SchedStep::Done
        ) {}
        sched.trace.quanta
    }

    #[test]
    fn indexed_pick_matches_linear_scan_at_1_and_64_clients() {
        // Every pick is re-derived with the old O(n) rotor scan inside
        // step_once (cross-check mode) and asserted identical; the
        // 1024-client case runs in the server workload's tests. Disk and
        // lock blocking both occur (write-through + shared root dir), so
        // all three wake paths are exercised.
        for &n in &[1usize, 64] {
            let q = run_cross_checked(n, 11);
            assert_eq!(q, run_cross_checked(n, 11), "n={n} not deterministic");
            assert!(q.len() > n, "n={n}: too few quanta: {}", q.len());
        }
    }

    #[test]
    fn preemptive_multi_client_matches_serialized_runs() {
        // The property at the heart of the refactor: interleaving
        // fault-free clients must not change what ends up in the file
        // system, only when. Compare against the same scripts run one
        // client at a time.
        let script = |i: usize| {
            vec![
                SyscallOp::Create(format!("/f{i}")),
                SyscallOp::Mkdir(format!("/dir{i}")),
            ]
        };
        let write_script = |fd: crate::kernel::Fd, i: usize| {
            vec![
                SyscallOp::Write {
                    fd,
                    data: vec![i as u8 + 1; 4096 * 2 + i],
                },
                SyscallOp::Fsync(fd),
                SyscallOp::Close(fd),
            ]
        };
        let run = |preemptive: bool| {
            let mut k = kernel(Policy::disk_write_through());
            // Phase 1: create files (returns per-client fds).
            let mut scripts: Vec<Script> = (0..4).map(|i| Script::new(script(i))).collect();
            if preemptive {
                let mut clients: Vec<&mut dyn PreemptClient> = scripts
                    .iter_mut()
                    .map(|s| s as &mut dyn PreemptClient)
                    .collect();
                run_preemptive(&mut k, &mut clients, 5, true).unwrap();
            } else {
                for s in &mut scripts {
                    let mut clients: [&mut dyn PreemptClient; 1] = [s];
                    run_preemptive(&mut k, &mut clients, 5, true).unwrap();
                }
            }
            let fds: Vec<crate::kernel::Fd> = scripts
                .iter()
                .map(|s| match s.rets[0] {
                    SyscallRet::Fd(fd) => fd,
                    ref other => panic!("create returned {other:?}"),
                })
                .collect();
            // Phase 2: write + fsync + close.
            let mut scripts: Vec<Script> = fds
                .iter()
                .enumerate()
                .map(|(i, &fd)| Script::new(write_script(fd, i)))
                .collect();
            if preemptive {
                let mut clients: Vec<&mut dyn PreemptClient> = scripts
                    .iter_mut()
                    .map(|s| s as &mut dyn PreemptClient)
                    .collect();
                run_preemptive(&mut k, &mut clients, 6, true).unwrap();
            } else {
                for s in &mut scripts {
                    let mut clients: [&mut dyn PreemptClient; 1] = [s];
                    run_preemptive(&mut k, &mut clients, 6, true).unwrap();
                }
            }
            let mut state: Vec<(String, Vec<u8>)> = Vec::new();
            for i in 0..4 {
                let path = format!("/f{i}");
                let data = k.file_contents(&path).unwrap();
                state.push((path, data));
            }
            (state, k.readdir("/").unwrap())
        };
        let inter = run(true);
        let serial = run(false);
        assert_eq!(inter, serial, "interleaving changed the final state");
    }
}
