//! `kmalloc`: the kernel heap allocator.
//!
//! Allocation headers live *in simulated memory* (16 bytes before each
//! block: magic + size), so heap bit flips corrupt them and the validation
//! on `kfree` — "bad magic", "double free" — produces exactly the kind of
//! consistency-check panic that §3.3 credits with stopping sick systems.
//! The free list itself is host-side state (it models pointer chains we do
//! not need to fault-target: the paper's allocation fault is the *premature
//! free*, delivered via [`crate::hooks::FaultHooks::on_kmalloc`]).

use crate::error::PanicReason;
use rio_mem::PhysMem;

/// Bytes of header before every allocation.
pub const HDR_BYTES: u64 = 16;
/// Magic tag of a live allocation.
pub const KMALLOC_MAGIC: u32 = 0x4B4D_414C;
/// Magic tag of a freed block.
pub const KFREE_MAGIC: u32 = 0x4B46_5245;

/// Heap-region byte offsets reserved ahead of the kmalloc arena.
pub mod heap_map {
    /// Lock words (8 bytes each; see [`crate::locks`]).
    pub const LOCKS_OFFSET: u64 = 0;
    /// Syscall activation record (see [`crate::machine::Machine`]).
    pub const ACT_RECORD_OFFSET: u64 = 64;
    /// Integrity-probe canary pattern (see
    /// [`crate::machine::Machine::integrity_probe`]).
    pub const CANARY_OFFSET: u64 = 128;
    /// Integrity-probe scratch area.
    pub const SCRATCH_OFFSET: u64 = 192;
    /// Probe canary/scratch length.
    pub const CANARY_LEN: u64 = 64;
    /// First byte of the kmalloc arena.
    pub const ARENA_OFFSET: u64 = 256;
}

/// Allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// kmalloc calls served.
    pub allocs: u64,
    /// kfree calls served.
    pub frees: u64,
    /// Bytes currently outstanding.
    pub live_bytes: u64,
}

/// First-fit free-list allocator over the kernel heap arena.
#[derive(Debug, Clone)]
pub struct KernelAlloc {
    arena_start: u64,
    arena_end: u64,
    /// `(addr, size)` of free spans, addr = header address.
    free: Vec<(u64, u64)>,
    stats: AllocStats,
}

impl KernelAlloc {
    /// An allocator over `[start, end)` of simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if the arena is smaller than one header.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start + HDR_BYTES, "arena too small");
        KernelAlloc {
            arena_start: start,
            arena_end: end,
            free: vec![(start, end - start)],
            stats: AllocStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Whether `addr` is a plausible allocation address in this arena.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.arena_start + HDR_BYTES && addr < self.arena_end
    }

    /// Allocates `size` bytes; returns the block address (after header).
    ///
    /// # Errors
    ///
    /// Panics the kernel (`Consistency`) when the arena is exhausted — the
    /// simulated heap is sized so this only happens under fault-induced
    /// leak storms, and a real kernel's `panic("kmem_malloc: out of space")`
    /// is the honest analogue.
    pub fn kmalloc(&mut self, mem: &mut PhysMem, size: u64) -> Result<u64, PanicReason> {
        let size = size.max(8); // minimum granule
        let need = size + HDR_BYTES;
        let pos = self
            .free
            .iter()
            .position(|&(_, len)| len >= need)
            .ok_or_else(|| PanicReason::Consistency("kmalloc: out of space".to_owned()))?;
        let (span_addr, len) = self.free[pos];
        // Carve from the TOP of the span (the arena grows downward, like
        // many real kernel allocators): long-lived objects end up at high
        // addresses with later transient buffers just below them — which is
        // exactly the adjacency that makes buffer overruns dangerous.
        let addr = span_addr + len - need;
        if len > need {
            // Keep any remainder, however small: coalescing re-merges it.
            self.free[pos] = (span_addr, len - need);
        } else {
            self.free.remove(pos);
        }
        // Write the header into simulated memory.
        mem.write_u64(addr, (KMALLOC_MAGIC as u64) | (size << 32));
        mem.write_u64(addr + 8, 0);
        self.stats.allocs += 1;
        self.stats.live_bytes += size;
        Ok(addr + HDR_BYTES)
    }

    /// Returns a span to the free list, coalescing with adjacent spans so
    /// the arena does not fragment under variable-size churn.
    fn insert_free(&mut self, addr: u64, size: u64) {
        let pos = self.free.partition_point(|&(a, _)| a < addr);
        self.free.insert(pos, (addr, size));
        // Merge with successor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        // Merge with predecessor.
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }

    /// Frees a block previously returned by [`KernelAlloc::kmalloc`].
    ///
    /// # Errors
    ///
    /// Kernel panic on bad magic (header corrupted or wild pointer) or
    /// double free.
    pub fn kfree(&mut self, mem: &mut PhysMem, addr: u64) -> Result<(), PanicReason> {
        if !self.contains(addr) {
            return Err(PanicReason::Consistency(
                "kfree: pointer outside arena".to_owned(),
            ));
        }
        let hdr_addr = addr - HDR_BYTES;
        let hdr = mem.read_u64(hdr_addr);
        let magic = (hdr & 0xFFFF_FFFF) as u32;
        let size = hdr >> 32;
        if magic == KFREE_MAGIC {
            return Err(PanicReason::Consistency("kfree: double free".to_owned()));
        }
        if magic != KMALLOC_MAGIC || hdr_addr + HDR_BYTES + size > self.arena_end {
            return Err(PanicReason::Consistency("kfree: bad block magic".to_owned()));
        }
        mem.write_u64(hdr_addr, (KFREE_MAGIC as u64) | (size << 32));
        self.insert_free(hdr_addr, size + HDR_BYTES);
        self.stats.frees += 1;
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(size);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_mem::{MemConfig, PhysMem};

    fn setup() -> (PhysMem, KernelAlloc) {
        let mem = PhysMem::new(MemConfig::small());
        let heap = mem.layout().heap;
        let alloc = KernelAlloc::new(heap.start + heap_map::ARENA_OFFSET, heap.end);
        (mem, alloc)
    }

    #[test]
    fn alloc_free_round_trip() {
        let (mut mem, mut a) = setup();
        let p = a.kmalloc(&mut mem, 100).unwrap();
        assert!(a.contains(p));
        assert_eq!(a.stats().live_bytes, 100);
        a.kfree(&mut mem, p).unwrap();
        assert_eq!(a.stats().live_bytes, 0);
        assert_eq!(a.stats().allocs, 1);
        assert_eq!(a.stats().frees, 1);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, mut a) = setup();
        let p1 = a.kmalloc(&mut mem, 64).unwrap();
        let p2 = a.kmalloc(&mut mem, 64).unwrap();
        assert!(p2 >= p1 + 64 + HDR_BYTES || p1 >= p2 + 64 + HDR_BYTES);
        // Fill both; no cross-talk.
        mem.fill(p1, 64, 0xAA);
        mem.fill(p2, 64, 0xBB);
        assert!(mem.to_vec(p1, 64).iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn freed_memory_is_reused() {
        let (mut mem, mut a) = setup();
        let p1 = a.kmalloc(&mut mem, 64).unwrap();
        a.kfree(&mut mem, p1).unwrap();
        // First-fit immediately finds... the remainder span first, but the
        // freed span is eventually reused. Allocate until exhaustion check
        // would be slow; instead verify the span is on the free list by
        // consuming the arena-sized tail first.
        let mut got_back = false;
        for _ in 0..10 {
            let p = a.kmalloc(&mut mem, 64).unwrap();
            if p == p1 {
                got_back = true;
                break;
            }
        }
        // Reuse may not be immediate under first-fit, but the span must not
        // be lost: total live allocations all succeeded.
        assert!(got_back || a.stats().allocs == 11);
    }

    #[test]
    fn double_free_panics() {
        let (mut mem, mut a) = setup();
        let p = a.kmalloc(&mut mem, 32).unwrap();
        a.kfree(&mut mem, p).unwrap();
        let err = a.kfree(&mut mem, p).unwrap_err();
        assert!(matches!(err, PanicReason::Consistency(s) if s.contains("double free")));
    }

    #[test]
    fn corrupted_header_is_detected() {
        let (mut mem, mut a) = setup();
        let p = a.kmalloc(&mut mem, 32).unwrap();
        mem.flip_bit(p - HDR_BYTES, 3); // flip a magic bit
        let err = a.kfree(&mut mem, p).unwrap_err();
        assert!(matches!(err, PanicReason::Consistency(s) if s.contains("bad block magic")));
    }

    #[test]
    fn wild_pointer_is_detected() {
        let (mut mem, mut a) = setup();
        let err = a.kfree(&mut mem, 0x10).unwrap_err();
        assert!(matches!(err, PanicReason::Consistency(s) if s.contains("outside arena")));
    }

    #[test]
    fn exhaustion_panics() {
        let mem = PhysMem::new(MemConfig::small());
        let heap = mem.layout().heap;
        let mut mem = mem;
        let mut a = KernelAlloc::new(heap.start, heap.start + 1024);
        // Consume the arena.
        let mut n = 0;
        loop {
            match a.kmalloc(&mut mem, 100) {
                Ok(_) => n += 1,
                Err(PanicReason::Consistency(s)) => {
                    assert!(s.contains("out of space"));
                    break;
                }
                Err(other) => panic!("unexpected: {other:?}"),
            }
            assert!(n < 100, "arena never exhausted");
        }
        assert!(n >= 8); // 1024 / 116 ≈ 8 blocks fit
    }
}
