//! fsync, system-wide flush, and the `update` daemon.

use crate::error::KernelError;
use crate::kernel::Kernel;
use rio_disk::SimTime;

impl Kernel {
    /// Makes one file durable: flush its dirty data pages and its inode
    /// block, synchronously.
    pub(crate) fn fsync_ino(&mut self, ino: u64) -> Result<(), KernelError> {
        self.flush_file_pages(ino, false)?;
        // Inode block (and any dirty metadata it shares a block with).
        let (block, _) = self.geometry.inode_location(ino);
        if self.bufcache.is_dirty(block) {
            if let Some(page) = self.bufcache.peek(block) {
                let now = self.machine.clock.now();
                let done = self.machine.disk.submit_write_from(
                    block,
                    self.machine.bus.mem().page(page),
                    now,
                    false,
                );
                self.bufcache.mark_clean(block);
                self.note_frame_flush(page, done);
            }
        }
        // Wait for everything queued to settle — fsync's contract.
        let now = self.machine.clock.now();
        let done = self.machine.disk.idle_at(now);
        self.machine.disk.sync(now);
        self.machine.clock.wait_until(done);
        self.stats.sync_waits += 1;
        // Everything submitted above is durable now: retire the registry
        // DIRTY bits the async page flushes left pending.
        self.retire_ubc_writebacks()?;
        Ok(())
    }

    /// Flushes all dirty metadata and data. `wait` makes it synchronous
    /// (the `sync` syscall); the `update` daemon passes `false`.
    pub(crate) fn flush_everything(&mut self, wait: bool) -> Result<(), KernelError> {
        // File data first: flushing can allocate backing blocks (delayed
        // allocation), which dirties inode and bitmap blocks — so metadata
        // must go out after the data pass or the pointer updates would
        // never reach the disk.
        let dirty = self.ubc.dirty_keys();
        for key in dirty {
            if let Some(page) = self.ubc.peek(key) {
                self.flush_one_ubc_page(key, page, false)?;
            }
        }
        let now = self.machine.clock.now();
        for block in self.bufcache.dirty_keys() {
            if let Some(page) = self.bufcache.peek(block) {
                let done = self.machine.disk.submit_write_from(
                    block,
                    self.machine.bus.mem().page(page),
                    now,
                    false,
                );
                self.bufcache.mark_clean(block);
                self.note_frame_flush(page, done);
            }
        }
        if wait {
            let now = self.machine.clock.now();
            let done = self.machine.disk.idle_at(now);
            self.machine.disk.sync(now);
            self.machine.clock.wait_until(done);
            self.stats.sync_waits += 1;
            self.retire_ubc_writebacks()?;
        }
        Ok(())
    }

    /// §2.3 future-work extension: once the disk has been idle for the
    /// configured period and dirty data exists, trickle a few pages out
    /// asynchronously. Nothing blocks; a busy disk defers the trickle.
    pub(crate) fn maybe_idle_writeback(&mut self) -> Result<(), KernelError> {
        let Some(after) = self.policy.idle_writeback_after else {
            return Ok(());
        };
        let now = self.machine.clock.now();
        // The disk's queue-drain time is also the moment it last worked:
        // idle duration is measured from there.
        let last_busy = self.machine.disk.idle_at(rio_disk::SimTime::ZERO);
        if last_busy > now || now.saturating_sub(last_busy) < after {
            return Ok(());
        }
        // Trickle: a small batch of the oldest dirty pages, plus dirty
        // metadata blocks, submitted asynchronously.
        let batch: Vec<(u64, u64)> = self.ubc.dirty_keys().into_iter().take(4).collect();
        for key in batch {
            if let Some(page) = self.ubc.peek(key) {
                self.flush_one_ubc_page(key, page, false)?;
            }
        }
        for block in self.bufcache.dirty_keys().into_iter().take(4) {
            if let Some(page) = self.bufcache.peek(block) {
                let now = self.machine.clock.now();
                let done = self.machine.disk.submit_write_from(
                    block,
                    self.machine.bus.mem().page(page),
                    now,
                    false,
                );
                self.bufcache.mark_clean(block);
                self.note_frame_flush(page, done);
            }
        }
        Ok(())
    }

    /// Advances simulated time to `t`, running the background daemons at
    /// the instants they fall due *inside* the gap.
    ///
    /// The per-syscall hooks (`maybe_update` / `maybe_idle_writeback` /
    /// `maybe_checkpoint`) only run at syscall entry, so a workload that
    /// idles via the raw [`crate::clock::Clock::idle_until`] produces no
    /// trickle writeback until its *next* syscall — and a crash inside the
    /// gap finds the dirty data still in memory, as if the daemons never
    /// existed. This is the kernel-honest idle path: it steps through the
    /// gap, firing each daemon at its due time, so an "idle gap then
    /// crash" leaves exactly the disk image a periodically-scheduled
    /// daemon would have produced.
    ///
    /// # Errors
    ///
    /// [`KernelError::Crashed`] once the system is down, or any daemon
    /// flush error.
    pub fn idle_until(&mut self, t: SimTime) -> Result<(), KernelError> {
        if self.is_crashed() {
            return Err(KernelError::Crashed);
        }
        loop {
            // Fire everything due at the current instant first.
            self.maybe_update()?;
            self.maybe_idle_writeback()?;
            self.maybe_checkpoint()?;
            let now = self.machine.clock.now();
            if now >= t {
                break;
            }
            // Hop to the earliest daemon due-time strictly inside the gap.
            let mut next = t;
            if let Some(due) = self.next_update {
                if due > now {
                    next = next.min(due);
                }
            }
            if let Some(due) = self.next_checkpoint {
                if due > now {
                    next = next.min(due);
                }
            }
            if let Some(after) = self.policy.idle_writeback_after {
                let has_dirty =
                    self.ubc.dirty_count() > 0 || !self.bufcache.dirty_keys().is_empty();
                if has_dirty {
                    let due = self.machine.disk.idle_at(SimTime::ZERO) + after;
                    if due > now {
                        next = next.min(due);
                    }
                }
            }
            // `next > now` always holds (every candidate above is filtered
            // on it and `t > now` here), so the loop strictly advances.
            self.machine.clock.idle_until(next);
        }
        Ok(())
    }

    /// Phoenix-style checkpoint (\[Gait90\], §6): walks every CHANGING file
    /// page, re-checksums it, and clears the flag — only now do the pages
    /// written since the previous checkpoint become recoverable. Charges a
    /// per-page cost modelling Phoenix's copy-on-write page duplication.
    pub fn checkpoint_now(&mut self) -> Result<u64, KernelError> {
        use rio_core::EntryFlags;
        let mut committed = 0u64;
        let keys = self.ubc.keys();
        for key in keys {
            let Some(page) = self.ubc.peek(key) else {
                continue;
            };
            let Some(mut entry) = self.rio_read_entry(page)? else {
                continue;
            };
            if !entry.flags.contains(EntryFlags::CHANGING) {
                continue;
            }
            entry.flags = entry.flags.without(EntryFlags::CHANGING);
            let valid = (entry.size as usize).min(rio_mem::PAGE_SIZE) as u32;
            // Sector cache: only the sectors dirtied since the previous
            // checkpoint are re-hashed — the Phoenix walk is O(dirty) too.
            entry.crc = self.page_crc_prefix(page, valid);
            self.rio_write_entry(page, &entry)?;
            // Phoenix keeps a duplicate of every modified page: charge the
            // copy (one page op for the walk, one for the duplication).
            self.machine.clock.charge_page_op();
            self.machine.clock.charge_page_op();
            committed += 1;
        }
        Ok(committed)
    }

    /// Runs the checkpoint when its interval has elapsed.
    pub(crate) fn maybe_checkpoint(&mut self) -> Result<(), KernelError> {
        let Some(due) = self.next_checkpoint else {
            return Ok(());
        };
        let now = self.machine.clock.now();
        if now < due {
            return Ok(());
        }
        let interval = self
            .policy
            .checkpoint_interval
            .expect("checkpoint policy set");
        self.next_checkpoint = Some(now + interval);
        self.checkpoint_now()?;
        Ok(())
    }

    /// Runs the `update` daemon if its interval has elapsed (called from
    /// every syscall entry; classic kernels schedule it every 30 s).
    pub(crate) fn maybe_update(&mut self) -> Result<(), KernelError> {
        let Some(due) = self.next_update else {
            return Ok(());
        };
        let now = self.machine.clock.now();
        if now < due {
            return Ok(());
        }
        let interval = self
            .policy
            .update_interval
            .unwrap_or(SimTime::from_secs(30));
        self.next_update = Some(now + interval);
        self.stats.update_runs += 1;
        self.flush_everything(false)
    }
}
