//! A passive LRU page-cache index, shared by the buffer cache (metadata,
//! keyed by disk block) and the UBC (file data, keyed by inode + page).
//!
//! "Passive" means the index performs no I/O and touches no simulated
//! memory: it only decides *which page* holds *which key* and *who gets
//! evicted*. The kernel drives all data movement, registry bookkeeping, and
//! write-back, so the cache cannot hide any of the machinery the
//! experiments measure.

use rio_mem::PageNum;
use std::collections::HashMap;
use std::hash::Hash;

/// What [`PageCache::insert`] displaced, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<K> {
    /// The key that lost its page.
    pub key: K,
    /// Whether it was dirty (the kernel must write it back first).
    pub dirty: bool,
    /// The page it occupied (now reassigned to the new key).
    pub page: PageNum,
}

#[derive(Debug, Clone)]
struct Slot<K> {
    key: Option<K>,
    dirty: bool,
    stamp: u64,
    /// Valid bytes in the page (UBC partial pages; full for metadata).
    valid: u32,
}

/// An LRU index over a fixed set of pages.
#[derive(Debug, Clone)]
pub struct PageCache<K> {
    pages: Vec<PageNum>,
    slots: Vec<Slot<K>>,
    map: HashMap<K, usize>,
    tick: u64,
    dirty_count: usize,
}

impl<K: Eq + Hash + Copy> PageCache<K> {
    /// A cache over the given pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is empty.
    pub fn new(pages: Vec<PageNum>) -> Self {
        assert!(!pages.is_empty(), "cache needs at least one page");
        let slots = pages
            .iter()
            .map(|_| Slot {
                key: None,
                dirty: false,
                stamp: 0,
                valid: 0,
            })
            .collect();
        PageCache {
            pages,
            slots,
            map: HashMap::new(),
            tick: 0,
            dirty_count: 0,
        }
    }

    /// Number of dirty entries (O(1); drives the dirty-data throttle).
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Number of page slots.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a key, refreshing its LRU position. Returns its page.
    pub fn lookup(&mut self, key: K) -> Option<PageNum> {
        let &slot = self.map.get(&key)?;
        self.tick += 1;
        self.slots[slot].stamp = self.tick;
        Some(self.pages[slot])
    }

    /// Looks up without refreshing LRU (diagnostics).
    pub fn peek(&self, key: K) -> Option<PageNum> {
        self.map.get(&key).map(|&s| self.pages[s])
    }

    /// Inserts a key, evicting the least-recently-used entry if full.
    /// Returns the assigned page and what was evicted.
    ///
    /// # Panics
    ///
    /// Panics if the key is already present (callers `lookup` first).
    pub fn insert(&mut self, key: K) -> (PageNum, Option<Evicted<K>>) {
        assert!(!self.map.contains_key(&key), "key already cached");
        self.tick += 1;
        // Free slot?
        if let Some(idx) = self.slots.iter().position(|s| s.key.is_none()) {
            self.slots[idx] = Slot {
                key: Some(key),
                dirty: false,
                stamp: self.tick,
                valid: 0,
            };
            self.map.insert(key, idx);
            return (self.pages[idx], None);
        }
        // Evict LRU.
        let idx = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.stamp)
            .map(|(i, _)| i)
            .expect("non-empty slots");
        let old = self.slots[idx].key.expect("occupied slot");
        let evicted = Evicted {
            key: old,
            dirty: self.slots[idx].dirty,
            page: self.pages[idx],
        };
        if self.slots[idx].dirty {
            self.dirty_count -= 1;
        }
        self.map.remove(&old);
        self.slots[idx] = Slot {
            key: Some(key),
            dirty: false,
            stamp: self.tick,
            valid: 0,
        };
        self.map.insert(key, idx);
        (self.pages[idx], Some(evicted))
    }

    /// Marks a cached key dirty.
    ///
    /// # Panics
    ///
    /// Panics if the key is not cached.
    pub fn mark_dirty(&mut self, key: K) {
        let &slot = self.map.get(&key).expect("key cached");
        if !self.slots[slot].dirty {
            self.dirty_count += 1;
        }
        self.slots[slot].dirty = true;
    }

    /// Clears a cached key's dirty bit (after write-back).
    pub fn mark_clean(&mut self, key: K) {
        if let Some(&slot) = self.map.get(&key) {
            if self.slots[slot].dirty {
                self.dirty_count -= 1;
            }
            self.slots[slot].dirty = false;
        }
    }

    /// Whether a cached key is dirty.
    pub fn is_dirty(&self, key: K) -> bool {
        self.map
            .get(&key)
            .is_some_and(|&slot| self.slots[slot].dirty)
    }

    /// Sets the valid-byte count for a key's page.
    pub fn set_valid(&mut self, key: K, valid: u32) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].valid = valid;
        }
    }

    /// Valid-byte count for a key's page.
    pub fn valid(&self, key: K) -> u32 {
        self.map.get(&key).map_or(0, |&slot| self.slots[slot].valid)
    }

    /// Drops a key without eviction bookkeeping (truncate/unlink).
    pub fn remove(&mut self, key: K) -> Option<PageNum> {
        let slot = self.map.remove(&key)?;
        if self.slots[slot].dirty {
            self.dirty_count -= 1;
        }
        self.slots[slot] = Slot {
            key: None,
            dirty: false,
            stamp: 0,
            valid: 0,
        };
        Some(self.pages[slot])
    }

    /// All dirty keys, oldest first (write-back order).
    pub fn dirty_keys(&self) -> Vec<K> {
        let mut v: Vec<(u64, K)> = self
            .slots
            .iter()
            .filter(|s| s.dirty)
            .map(|s| (s.stamp, s.key.expect("dirty slot occupied")))
            .collect();
        v.sort_by_key(|&(stamp, _)| stamp);
        v.into_iter().map(|(_, k)| k).collect()
    }

    /// All cached keys (unordered).
    pub fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(n: u64) -> PageCache<u64> {
        PageCache::new((0..n).map(PageNum).collect())
    }

    #[test]
    fn insert_lookup_round_trip() {
        let mut c = cache(4);
        let (p, ev) = c.insert(10);
        assert!(ev.is_none());
        assert_eq!(c.lookup(10), Some(p));
        assert_eq!(c.lookup(11), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_untouched() {
        let mut c = cache(2);
        c.insert(1);
        c.insert(2);
        c.lookup(1); // refresh 1; 2 is now LRU
        let (_, ev) = c.insert(3);
        let ev = ev.unwrap();
        assert_eq!(ev.key, 2);
        assert_eq!(c.lookup(2), None);
        assert!(c.lookup(1).is_some());
    }

    #[test]
    fn eviction_reports_dirtiness_and_page() {
        let mut c = cache(1);
        let (p1, _) = c.insert(1);
        c.mark_dirty(1);
        let (p2, ev) = c.insert(2);
        let ev = ev.unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.key, 1);
        assert_eq!(ev.page, p1);
        assert_eq!(p1, p2, "page reused");
    }

    #[test]
    fn dirty_tracking() {
        let mut c = cache(4);
        c.insert(1);
        c.insert(2);
        c.mark_dirty(2);
        assert!(!c.is_dirty(1));
        assert!(c.is_dirty(2));
        assert_eq!(c.dirty_keys(), vec![2]);
        c.mark_clean(2);
        assert!(c.dirty_keys().is_empty());
    }

    #[test]
    fn dirty_keys_are_oldest_first() {
        let mut c = cache(4);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.mark_dirty(3);
        c.mark_dirty(1);
        // 3 was dirtied first by stamp order of its slot (insert stamp),
        // but stamps track last touch: 1 inserted first => older stamp.
        assert_eq!(c.dirty_keys(), vec![1, 3]);
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut c = cache(1);
        let (p, _) = c.insert(5);
        assert_eq!(c.remove(5), Some(p));
        assert!(c.is_empty());
        let (_, ev) = c.insert(6);
        assert!(ev.is_none(), "slot was free");
    }

    #[test]
    fn valid_bytes_tracked_per_key() {
        let mut c = cache(2);
        c.insert(1);
        c.set_valid(1, 4096);
        assert_eq!(c.valid(1), 4096);
        assert_eq!(c.valid(2), 0);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn duplicate_insert_panics() {
        let mut c = cache(2);
        c.insert(1);
        c.insert(1);
    }
}
