//! Absolute-path parsing.

use crate::error::KernelError;
use crate::ondisk::MAX_NAME;

/// Splits an absolute path into validated components.
///
/// `"/"` yields an empty list (the root itself).
///
/// # Errors
///
/// [`KernelError::InvalidPath`] for relative paths, empty components, or
/// `.`/`..` (not supported by this kernel); [`KernelError::NameTooLong`]
/// for oversized components.
pub fn split_path(path: &str) -> Result<Vec<String>, KernelError> {
    let Some(rest) = path.strip_prefix('/') else {
        return Err(KernelError::InvalidPath);
    };
    let mut out = Vec::new();
    for comp in rest.split('/') {
        if comp.is_empty() {
            continue; // tolerate trailing or doubled slashes
        }
        if comp == "." || comp == ".." {
            return Err(KernelError::InvalidPath);
        }
        if comp.len() > MAX_NAME {
            return Err(KernelError::NameTooLong);
        }
        out.push(comp.to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_absolute_paths() {
        assert_eq!(split_path("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_path("/").unwrap(), Vec::<String>::new());
        assert_eq!(split_path("/x").unwrap(), vec!["x"]);
    }

    #[test]
    fn tolerates_redundant_slashes() {
        assert_eq!(split_path("//a///b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn rejects_relative_and_dot_paths() {
        assert_eq!(split_path("a/b"), Err(KernelError::InvalidPath));
        assert_eq!(split_path("/a/./b"), Err(KernelError::InvalidPath));
        assert_eq!(split_path("/a/../b"), Err(KernelError::InvalidPath));
        assert_eq!(split_path(""), Err(KernelError::InvalidPath));
    }

    #[test]
    fn rejects_oversized_names() {
        let long = format!("/{}", "x".repeat(MAX_NAME + 1));
        assert_eq!(split_path(&long), Err(KernelError::NameTooLong));
        let ok = format!("/{}", "x".repeat(MAX_NAME));
        assert!(split_path(&ok).is_ok());
    }
}
