//! Preemptive syscall execution: resumable continuations and blocking
//! locks with deterministic FIFO wait queues.
//!
//! The legacy scheduler ([`crate::sched::run_clients`]) runs one whole
//! blocking op per quantum with every kernel lock asserted free between
//! quanta — so lock contention and mid-syscall crashes literally cannot
//! happen, while the paper's Table 1 was measured on a kernel where real
//! processes had half-finished syscall state at every crash. This module
//! closes that gap:
//!
//! - [`SyscallOp`] names a syscall with owned arguments; [`SyscallCont`]
//!   executes it as an explicit phase machine that yields the CPU at the
//!   operation's *actual block points* — a buffer-cache or UBC miss that
//!   goes to disk, a dirty-throttle stall, an fsync drain — with kernel
//!   state half-mutated (staging buffers allocated, registry entries
//!   CHANGING, directory blocks partially updated).
//! - Locks are legitimately held **across** yields: `namei` sleeps on a
//!   directory-block read holding `Fs`; a multi-page write holds `Ubc`
//!   from first page to last. A second client hitting a held lock joins
//!   a FIFO wait queue ([`LockQueues`]) and blocks; releases hand the
//!   lock to the queue head by *reservation*, so the wake-up order is a
//!   pure function of simulated state — deterministic at any
//!   `RIO_THREADS`.
//!
//! # Why a reservation, not an ownership transfer
//!
//! When a release pops the FIFO head we cannot simply flip the lock word
//! to the waiter: the waiter's acquire phase re-runs when it next gets
//! the CPU, and finding the word already "held by itself" would panic as
//! a double acquire. Instead the release *reserves* the lock for the
//! head; the scheduler only considers a lock-blocked client runnable once
//! its reservation exists, and the re-run acquire phase then takes the
//! word itself. The word-level panic semantics of [`crate::locks`] are
//! untouched — a skipped release (§3.1's synchronization fault) still
//! leaves the word in the wrong state, and the next consistent acquire
//! still crashes the kernel.
//!
//! # Deadlock freedom
//!
//! Only `Fs` (namei) and `Ubc` (the page loop of a read/write) are ever
//! held across a yield, and no continuation ever holds both: path ops
//! take `Fs` only, data ops take `Ubc` only, and `Buf`/`Alloc` are
//! acquired and released *within* a single phase (where no yield can
//! occur). Hold-one-at-a-time means no cycle, hence no deadlock.

use crate::data::{ReadJob, WriteJob};
use crate::error::KernelError;
use crate::kernel::{Fd, Kernel};
use crate::locks::LockId;
use crate::ondisk::ROOT_INO;
use rio_disk::SimTime;
use std::collections::VecDeque;

/// A syscall with owned arguments, ready to run as a continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallOp {
    /// `create(path)` → [`SyscallRet::Fd`].
    Create(String),
    /// `open(path)` → [`SyscallRet::Fd`].
    Open(String),
    /// `close(fd)` → [`SyscallRet::Unit`].
    Close(Fd),
    /// `write(fd, data)` → [`SyscallRet::Size`].
    Write {
        /// Target descriptor.
        fd: Fd,
        /// Bytes to write at the descriptor position.
        data: Vec<u8>,
    },
    /// `pwrite(fd, offset, data)` → [`SyscallRet::Size`].
    Pwrite {
        /// Target descriptor.
        fd: Fd,
        /// Absolute byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// `read(fd, len)` → [`SyscallRet::Bytes`].
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Maximum bytes to read.
        len: usize,
    },
    /// `pread(fd, offset, len)` → [`SyscallRet::Bytes`].
    Pread {
        /// Source descriptor.
        fd: Fd,
        /// Absolute byte offset.
        offset: u64,
        /// Maximum bytes to read.
        len: usize,
    },
    /// `fsync(fd)` → [`SyscallRet::Unit`].
    Fsync(Fd),
    /// `mkdir(path)` → [`SyscallRet::Unit`].
    Mkdir(String),
    /// `rmdir(path)` → [`SyscallRet::Unit`].
    Rmdir(String),
    /// `unlink(path)` → [`SyscallRet::Unit`].
    Unlink(String),
    /// `readdir(path)` → [`SyscallRet::Names`].
    Readdir(String),
}

impl SyscallOp {
    /// The path argument, for path-resolving ops.
    fn path(&self) -> Option<&str> {
        match self {
            SyscallOp::Create(p)
            | SyscallOp::Open(p)
            | SyscallOp::Mkdir(p)
            | SyscallOp::Rmdir(p)
            | SyscallOp::Unlink(p)
            | SyscallOp::Readdir(p) => Some(p),
            _ => None,
        }
    }
}

/// A completed syscall's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallRet {
    /// An open descriptor (`create`/`open`).
    Fd(Fd),
    /// Read data.
    Bytes(Vec<u8>),
    /// Bytes written.
    Size(usize),
    /// Directory listing.
    Names(Vec<String>),
    /// Nothing (close/fsync/mkdir/rmdir/unlink).
    Unit,
}

/// Why a continuation gave up the CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Yield {
    /// The syscall completed with this result. A deferred disk wake-up
    /// may still be pending on the clock (e.g. a throttle stall in the
    /// final phase); the scheduler blocks the client until then.
    Done(SyscallRet),
    /// Blocked at a disk wake-up recorded on the deferred-wait clock;
    /// the scheduler takes the time with
    /// [`crate::clock::Clock::take_deferred`].
    Disk,
    /// Blocked in the FIFO wait queue of this lock; runnable again once
    /// the queue reserves the lock for this client.
    Lock(LockId),
}

/// Host-side lock ownership, FIFO wait queues, and hand-off
/// reservations. Lives in the [`Kernel`] beside the fd table and — like
/// it — dies at a crash; the crash-surviving truth stays in the lock
/// *words* in simulated memory ([`crate::locks::LockSet`]).
#[derive(Debug, Clone, Default)]
pub struct LockQueues {
    /// Which client's continuation holds each lock (set only by the
    /// preemptive acquire path; legacy within-phase lock pairs never
    /// register here).
    owner: [Option<u32>; 4],
    /// FIFO of `(client, wait-start time)` per lock.
    waiters: [VecDeque<(u32, SimTime)>; 4],
    /// Hand-off reservation: the released lock is earmarked for this
    /// client (the FIFO head at release time) until it takes the word.
    reserved: [Option<u32>; 4],
}

impl LockQueues {
    /// Which client holds the lock, if the preemptive path acquired it.
    pub fn owner(&self, id: LockId) -> Option<u32> {
        self.owner[id.index()]
    }

    /// The client the lock is currently reserved for, if any.
    pub fn reserved_for(&self, id: LockId) -> Option<u32> {
        self.reserved[id.index()]
    }

    /// How many clients are queued waiting for the lock.
    pub fn waiter_count(&self, id: LockId) -> usize {
        self.waiters[id.index()].len()
    }
}

impl Kernel {
    /// Which client's continuation holds `id` (preemptive scheduling
    /// introspection; crash forensics records held locks at injection).
    pub fn lock_owner(&self, id: LockId) -> Option<u32> {
        self.lockq.owner(id)
    }

    /// Clients queued waiting for `id`.
    pub fn lock_waiters(&self, id: LockId) -> usize {
        self.lockq.waiter_count(id)
    }

    /// The client `id` is reserved for after a FIFO hand-off.
    pub fn lock_reserved_for(&self, id: LockId) -> Option<u32> {
        self.lockq.reserved_for(id)
    }

    /// Blocking lock acquire for the preemptive path. `Ok(true)` means
    /// the lock word was taken; `Ok(false)` means the lock is held (or
    /// reserved for another client) and the caller joined the FIFO —
    /// the continuation must yield [`Yield::Lock`] and re-run this
    /// acquire when the scheduler wakes it.
    ///
    /// # Errors
    ///
    /// Word-level panics propagate exactly as on the legacy path: a word
    /// left held by a skipped release, a corrupted word, or a true
    /// double acquire crashes the kernel.
    pub(crate) fn lock_acquire_preempt(&mut self, id: LockId) -> Result<bool, KernelError> {
        let me = self
            .cur_client
            .expect("preemptive lock acquire outside a scheduled quantum");
        let i = id.index();
        // FIFO hand-off: a release reserved the word for us.
        if self.lockq.reserved[i] == Some(me) {
            let since = self.lockq.waiters[i].pop_front().map(|(_, t)| t);
            self.lockq.reserved[i] = None;
            self.lock(id)?;
            self.lockq.owner[i] = Some(me);
            self.stats.locks_acquired += 1;
            if let Some(since) = since {
                let waited = self.machine.clock.now().saturating_sub(since);
                rio_obs::histogram_record("locks.wait_us", waited.as_micros());
            }
            return Ok(true);
        }
        let uncontended = self.lockq.owner[i].is_none()
            && self.lockq.reserved[i].is_none()
            && self.lockq.waiters[i].is_empty();
        if uncontended || self.lockq.owner[i] == Some(me) {
            // Free — or a double acquire by the owner, which must hit the
            // word and reproduce the legacy `simple_lock: already held`
            // panic.
            self.lock(id)?;
            self.lockq.owner[i] = Some(me);
            self.stats.locks_acquired += 1;
            return Ok(true);
        }
        // Contended: join the FIFO once, then block.
        if !self.lockq.waiters[i].iter().any(|&(c, _)| c == me) {
            let now = self.machine.clock.now();
            self.lockq.waiters[i].push_back((me, now));
            self.stats.locks_contended += 1;
            if rio_obs::is_enabled() {
                rio_obs::emit(
                    rio_obs::EventCategory::LockContended,
                    rio_obs::Payload::Addr {
                        addr: i as u64,
                        aux: u64::from(me),
                    },
                );
            }
        }
        Ok(false)
    }

    /// Release for the preemptive path: frees the word (legacy
    /// semantics, including the skipped-release fault and the
    /// crashed-kernel no-op), clears ownership, and reserves the lock
    /// for the FIFO head so the scheduler can wake it.
    pub(crate) fn unlock_preempt(&mut self, id: LockId) -> Result<(), KernelError> {
        let i = id.index();
        let r = self.unlock(id);
        self.lockq.owner[i] = None;
        if self.lockq.reserved[i].is_none() {
            self.lockq.reserved[i] = self.lockq.waiters[i].front().map(|&(c, _)| c);
        }
        r
    }
}

/// Execution phases of a [`SyscallCont`]. Every variant boundary is a
/// potential yield point: the clock's deferred-wait mode records any
/// synchronous disk wait the phase performed, and the driver yields the
/// CPU if one is pending before entering the next phase.
#[derive(Debug, Clone)]
enum Phase {
    /// Syscall entry: crash guard, accounting, background daemons.
    Start,
    /// Blocking acquire of the namespace lock.
    AcqFs,
    /// Path walk under `Fs` — may sleep on directory-block reads while
    /// holding the lock (the classic namei sleep).
    Namei,
    /// Op-specific body under `Fs`; releases the lock at its end.
    PathBody {
        dir: u64,
        leaf: String,
        existing: Option<u64>,
    },
    /// File-object allocation after the namespace work (create/open).
    MakeFd { ino: u64 },
    /// `readdir("/")`: no path walk, no `Fs` — mirrors the legacy
    /// fast path.
    RootReaddir,
    /// close/fsync body (flush may sleep on the disk drain).
    FdBody,
    /// Blocking acquire of the UBC lock (read/write).
    AcqUbc,
    /// Write setup under `Ubc`: fd state, activation record, staging.
    WritePrep,
    /// The per-page copy loop under `Ubc`; yields between pages when a
    /// UBC miss went to disk.
    WriteLoop {
        job: WriteJob,
        fd_addr: u64,
        pos: u64,
    },
    /// Write teardown: inode update, data policy (throttle may stall),
    /// `Ubc` release, fd position.
    WriteTail {
        job: WriteJob,
        fd_addr: u64,
        pos: u64,
    },
    /// Read setup under `Ubc`.
    ReadPrep,
    /// The per-page copy-out loop under `Ubc`.
    ReadLoop {
        job: ReadJob,
        fd_addr: u64,
        pos: u64,
    },
    /// Read teardown and `Ubc` release.
    ReadTail {
        job: ReadJob,
        fd_addr: u64,
        pos: u64,
    },
    /// Deliver the result.
    Finish(SyscallRet),
    /// Transient marker while a phase executes; also the terminal state
    /// after `Finish`.
    Poisoned,
}

/// A resumable in-flight syscall: the explicit continuation the
/// preemptive scheduler parks when a client blocks. All state a real
/// kernel would keep on the sleeping process's stack lives here —
/// which phase comes next, the I/O cursor, and which locks the process
/// holds.
#[derive(Debug, Clone)]
pub struct SyscallCont {
    op: SyscallOp,
    phase: Phase,
    /// Locks held across yields (release order is the reverse).
    held: Vec<LockId>,
}

impl SyscallCont {
    /// A continuation at its entry point.
    pub fn new(op: SyscallOp) -> Self {
        SyscallCont {
            op,
            phase: Phase::Start,
            held: Vec::new(),
        }
    }

    /// The operation this continuation is executing.
    pub fn op(&self) -> &SyscallOp {
        &self.op
    }

    /// Locks currently held across a yield.
    pub fn held_locks(&self) -> &[LockId] {
        &self.held
    }

    /// Runs the continuation until it completes or blocks. Must be
    /// called with the clock in deferred-wait mode and
    /// [`Kernel::cur_client`] set; the caller takes the deferred
    /// wake-up after this returns.
    ///
    /// # Errors
    ///
    /// Syscall errors and kernel panics propagate; all held locks are
    /// released first (a real kernel's error unwind does the same), so
    /// a failed op never wedges the lock queues.
    pub(crate) fn resume(&mut self, k: &mut Kernel) -> Result<Yield, KernelError> {
        let r = self.drive(k);
        if r.is_err() {
            while let Some(id) = self.held.pop() {
                let _ = k.unlock_preempt(id);
            }
        }
        r
    }

    fn drive(&mut self, k: &mut Kernel) -> Result<Yield, KernelError> {
        loop {
            if let Some(y) = self.step(k)? {
                return Ok(y);
            }
            // Phase boundary: if the phase we just ran slept on the disk,
            // the client loses the CPU here — possibly holding locks.
            // (`Finish` is exempt: the scheduler folds a trailing wait
            // into the completed op's wake-up time.)
            if k.machine.clock.deferred_pending() && !matches!(self.phase, Phase::Finish(_)) {
                return Ok(Yield::Disk);
            }
        }
    }

    fn release(&mut self, k: &mut Kernel, id: LockId) -> Result<(), KernelError> {
        debug_assert_eq!(self.held.last(), Some(&id));
        self.held.pop();
        k.unlock_preempt(id)
    }

    /// Executes the current phase. `Ok(None)` advances to the next
    /// phase; `Ok(Some(y))` gives up the CPU.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, k: &mut Kernel) -> Result<Option<Yield>, KernelError> {
        let phase = std::mem::replace(&mut self.phase, Phase::Poisoned);
        match phase {
            Phase::Start => {
                k.enter_syscall()?;
                self.phase = match &self.op {
                    SyscallOp::Readdir(p) if p == "/" => Phase::RootReaddir,
                    SyscallOp::Create(_)
                    | SyscallOp::Open(_)
                    | SyscallOp::Mkdir(_)
                    | SyscallOp::Rmdir(_)
                    | SyscallOp::Unlink(_)
                    | SyscallOp::Readdir(_) => Phase::AcqFs,
                    SyscallOp::Close(_) | SyscallOp::Fsync(_) => Phase::FdBody,
                    SyscallOp::Write { .. }
                    | SyscallOp::Pwrite { .. }
                    | SyscallOp::Read { .. }
                    | SyscallOp::Pread { .. } => Phase::AcqUbc,
                };
                Ok(None)
            }
            Phase::AcqFs => {
                if k.lock_acquire_preempt(LockId::Fs)? {
                    self.held.push(LockId::Fs);
                    self.phase = Phase::Namei;
                    Ok(None)
                } else {
                    self.phase = Phase::AcqFs;
                    Ok(Some(Yield::Lock(LockId::Fs)))
                }
            }
            Phase::Namei => {
                let path = self.op.path().expect("namei phase implies a path op");
                let (dir, leaf, existing) = k.namei_locked(path)?;
                self.phase = Phase::PathBody {
                    dir,
                    leaf,
                    existing,
                };
                Ok(None)
            }
            Phase::PathBody {
                dir,
                leaf,
                existing,
            } => {
                match &self.op {
                    SyscallOp::Create(_) => {
                        let ino = k.create_body(dir, &leaf, existing)?;
                        self.release(k, LockId::Fs)?;
                        self.phase = Phase::MakeFd { ino };
                    }
                    SyscallOp::Open(_) => {
                        let ino = k.open_body(existing)?;
                        self.release(k, LockId::Fs)?;
                        self.phase = Phase::MakeFd { ino };
                    }
                    SyscallOp::Mkdir(_) => {
                        k.mkdir_body(dir, &leaf, existing)?;
                        self.release(k, LockId::Fs)?;
                        self.phase = Phase::Finish(SyscallRet::Unit);
                    }
                    SyscallOp::Rmdir(_) => {
                        k.rmdir_body(dir, &leaf, existing)?;
                        self.release(k, LockId::Fs)?;
                        self.phase = Phase::Finish(SyscallRet::Unit);
                    }
                    SyscallOp::Unlink(_) => {
                        k.unlink_body(dir, &leaf, existing)?;
                        self.release(k, LockId::Fs)?;
                        self.phase = Phase::Finish(SyscallRet::Unit);
                    }
                    SyscallOp::Readdir(_) => {
                        let ino = existing.ok_or(KernelError::NotFound)?;
                        let names = k.readdir_body(ino)?;
                        self.release(k, LockId::Fs)?;
                        self.phase = Phase::Finish(SyscallRet::Names(names));
                    }
                    _ => unreachable!("PathBody only runs for path ops"),
                }
                Ok(None)
            }
            Phase::MakeFd { ino } => {
                let fd = k.make_fd(ino)?;
                self.phase = Phase::Finish(SyscallRet::Fd(fd));
                Ok(None)
            }
            Phase::RootReaddir => {
                let names = k.readdir_body(ROOT_INO)?;
                self.phase = Phase::Finish(SyscallRet::Names(names));
                Ok(None)
            }
            Phase::FdBody => {
                match self.op {
                    SyscallOp::Close(fd) => {
                        let (addr, ino, _) = k.fd_read_state(fd)?;
                        if k.policy.fsync_on_close && k.policy.fsync_writes_disk {
                            k.fsync_ino(ino)?;
                        }
                        k.fds.remove(&fd.0);
                        k.kfree_traced(addr)?;
                    }
                    SyscallOp::Fsync(fd) => {
                        let (_, ino, _) = k.fd_read_state(fd)?;
                        if k.policy.fsync_writes_disk {
                            k.fsync_ino(ino)?;
                        }
                    }
                    _ => unreachable!("FdBody only runs for close/fsync"),
                }
                self.phase = Phase::Finish(SyscallRet::Unit);
                Ok(None)
            }
            Phase::AcqUbc => {
                if k.lock_acquire_preempt(LockId::Ubc)? {
                    self.held.push(LockId::Ubc);
                    self.phase = match &self.op {
                        SyscallOp::Write { .. } | SyscallOp::Pwrite { .. } => Phase::WritePrep,
                        SyscallOp::Read { .. } | SyscallOp::Pread { .. } => Phase::ReadPrep,
                        _ => unreachable!("AcqUbc only runs for data ops"),
                    };
                    Ok(None)
                } else {
                    self.phase = Phase::AcqUbc;
                    Ok(Some(Yield::Lock(LockId::Ubc)))
                }
            }
            Phase::WritePrep => {
                let (fd, explicit_offset, data) = match &self.op {
                    SyscallOp::Write { fd, data } => (*fd, None, data.clone()),
                    SyscallOp::Pwrite { fd, offset, data } => (*fd, Some(*offset), data.clone()),
                    _ => unreachable!("WritePrep only runs for write ops"),
                };
                let (fd_addr, ino, pos) = k.fd_read_state(fd)?;
                let offset = explicit_offset.unwrap_or(pos);
                let job = k.write_prep(ino, offset, &data)?;
                self.phase = Phase::WriteLoop { job, fd_addr, pos };
                Ok(None)
            }
            Phase::WriteLoop {
                mut job,
                fd_addr,
                pos,
            } => {
                if job.done < job.len {
                    k.write_one_page(&mut job)?;
                }
                self.phase = if job.done < job.len {
                    Phase::WriteLoop { job, fd_addr, pos }
                } else {
                    Phase::WriteTail { job, fd_addr, pos }
                };
                Ok(None)
            }
            Phase::WriteTail { job, fd_addr, pos } => {
                // Refresh the inode (`true`): a daemon or another client
                // may have assigned backing blocks while we were parked.
                k.write_finish(job, true)?;
                self.release(k, LockId::Ubc)?;
                let written = match &self.op {
                    SyscallOp::Write { data, .. } => {
                        k.fd_write_pos(fd_addr, pos + data.len() as u64);
                        data.len()
                    }
                    SyscallOp::Pwrite { data, .. } => data.len(),
                    _ => unreachable!("WriteTail only runs for write ops"),
                };
                self.phase = Phase::Finish(SyscallRet::Size(written));
                Ok(None)
            }
            Phase::ReadPrep => {
                let (fd, explicit_offset, len) = match &self.op {
                    SyscallOp::Read { fd, len } => (*fd, None, *len),
                    SyscallOp::Pread { fd, offset, len } => (*fd, Some(*offset), *len),
                    _ => unreachable!("ReadPrep only runs for read ops"),
                };
                let (fd_addr, ino, pos) = k.fd_read_state(fd)?;
                let offset = explicit_offset.unwrap_or(pos);
                let job = k.read_prep(ino, offset, len)?;
                self.phase = Phase::ReadLoop { job, fd_addr, pos };
                Ok(None)
            }
            Phase::ReadLoop {
                mut job,
                fd_addr,
                pos,
            } => {
                if job.done < job.total {
                    k.read_one_page(&mut job)?;
                }
                self.phase = if job.done < job.total {
                    Phase::ReadLoop { job, fd_addr, pos }
                } else {
                    Phase::ReadTail { job, fd_addr, pos }
                };
                Ok(None)
            }
            Phase::ReadTail { job, fd_addr, pos } => {
                let out = k.read_finish(job)?;
                self.release(k, LockId::Ubc)?;
                if matches!(self.op, SyscallOp::Read { .. }) {
                    k.fd_write_pos(fd_addr, pos + out.len() as u64);
                }
                self.phase = Phase::Finish(SyscallRet::Bytes(out));
                Ok(None)
            }
            Phase::Finish(ret) => Ok(Some(Yield::Done(ret))),
            Phase::Poisoned => unreachable!("resumed a finished continuation"),
        }
    }
}
