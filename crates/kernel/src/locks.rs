//! Kernel locks as words in simulated memory, with assertion checks.
//!
//! Our simulated kernel is single-threaded, so locks cannot deadlock — but
//! they *assert*: acquiring a held lock or releasing a free one panics,
//! like `simple_lock: lock already held` in real kernels. This is how the
//! synchronization fault of §3.1 (acquire/release that silently do nothing)
//! manifests: the skipped operation leaves the word in the wrong state and
//! the next consistent use panics. Table 1's synchronization row is blank
//! for all three systems — crashes, not corruption — and that is exactly
//! the dynamic this model produces. The lock words live in the heap region,
//! so heap bit flips can also corrupt them.

use crate::alloc::heap_map::LOCKS_OFFSET;
use crate::error::PanicReason;
use crate::hooks::FaultHooks;
use rio_mem::PhysMem;

/// The kernel's global locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockId {
    /// File-system namespace lock.
    Fs,
    /// Allocator lock.
    Alloc,
    /// Buffer-cache lock.
    Buf,
    /// UBC lock.
    Ubc,
}

impl LockId {
    /// The canonical list of every kernel lock. All code that enumerates
    /// locks (invariant checks, scheduler wait queues, observability)
    /// iterates this one list, so a newly added lock cannot silently
    /// escape a check.
    pub const ALL: [LockId; 4] = [LockId::Fs, LockId::Alloc, LockId::Buf, LockId::Ubc];

    /// Stable index of this lock in [`LockId::ALL`] (word offset, queue
    /// slot).
    pub fn index(self) -> usize {
        match self {
            LockId::Fs => 0,
            LockId::Alloc => 1,
            LockId::Buf => 2,
            LockId::Ubc => 3,
        }
    }

    /// Short lowercase name (panic messages, trace events).
    pub fn name(self) -> &'static str {
        match self {
            LockId::Fs => "fs",
            LockId::Alloc => "alloc",
            LockId::Buf => "buf",
            LockId::Ubc => "ubc",
        }
    }
}

/// Value stored in a held lock word.
const HELD: u64 = 1;

/// The lock words, at fixed heap offsets.
#[derive(Debug, Clone, Copy)]
pub struct LockSet {
    base: u64,
}

impl LockSet {
    /// Creates the set and initializes all words to free.
    pub fn init(mem: &mut PhysMem) -> Self {
        let base = mem.layout().heap.start + LOCKS_OFFSET;
        let set = LockSet { base };
        for id in LockId::ALL {
            mem.write_u64(set.addr(id), 0);
        }
        set
    }

    fn addr(&self, id: LockId) -> u64 {
        self.base + id.index() as u64 * 8
    }

    /// Acquires a lock.
    ///
    /// # Errors
    ///
    /// Kernel panic if the word is not in the free state (double acquire,
    /// skipped release, or a corrupted word).
    pub fn acquire(
        &self,
        mem: &mut PhysMem,
        hooks: &mut FaultHooks,
        id: LockId,
    ) -> Result<(), PanicReason> {
        if hooks.skip_lock_op() {
            return Ok(()); // the injected bug: "return without acquiring"
        }
        let addr = self.addr(id);
        let v = mem.read_u64(addr);
        if v != 0 {
            return Err(PanicReason::Lock(format!(
                "simple_lock: {} lock already held",
                id.name()
            )));
        }
        mem.write_u64(addr, HELD);
        Ok(())
    }

    /// Releases a lock.
    ///
    /// # Errors
    ///
    /// Kernel panic if the word is not in the held state.
    pub fn release(
        &self,
        mem: &mut PhysMem,
        hooks: &mut FaultHooks,
        id: LockId,
    ) -> Result<(), PanicReason> {
        if hooks.skip_lock_op() {
            return Ok(()); // "return without freeing"
        }
        let addr = self.addr(id);
        let v = mem.read_u64(addr);
        if v != HELD {
            return Err(PanicReason::Lock(format!(
                "simple_unlock: {} lock not held",
                id.name()
            )));
        }
        mem.write_u64(addr, 0);
        Ok(())
    }

    /// Whether a lock is currently held (test/diagnostic helper).
    pub fn is_held(&self, mem: &PhysMem, id: LockId) -> bool {
        mem.read_u64(self.addr(id)) == HELD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::Cadence;
    use rio_mem::MemConfig;

    fn setup() -> (PhysMem, LockSet, FaultHooks) {
        let mut mem = PhysMem::new(MemConfig::small());
        let set = LockSet::init(&mut mem);
        (mem, set, FaultHooks::none())
    }

    #[test]
    fn acquire_release_cycle() {
        let (mut mem, set, mut h) = setup();
        set.acquire(&mut mem, &mut h, LockId::Fs).unwrap();
        assert!(set.is_held(&mem, LockId::Fs));
        set.release(&mut mem, &mut h, LockId::Fs).unwrap();
        assert!(!set.is_held(&mem, LockId::Fs));
    }

    #[test]
    fn double_acquire_panics() {
        let (mut mem, set, mut h) = setup();
        set.acquire(&mut mem, &mut h, LockId::Buf).unwrap();
        let err = set.acquire(&mut mem, &mut h, LockId::Buf).unwrap_err();
        assert!(matches!(err, PanicReason::Lock(s) if s.contains("already held")));
    }

    #[test]
    fn release_unheld_panics() {
        let (mut mem, set, mut h) = setup();
        let err = set.release(&mut mem, &mut h, LockId::Ubc).unwrap_err();
        assert!(matches!(err, PanicReason::Lock(s) if s.contains("not held")));
    }

    #[test]
    fn locks_are_independent() {
        let (mut mem, set, mut h) = setup();
        set.acquire(&mut mem, &mut h, LockId::Fs).unwrap();
        set.acquire(&mut mem, &mut h, LockId::Alloc).unwrap();
        set.release(&mut mem, &mut h, LockId::Fs).unwrap();
        assert!(set.is_held(&mem, LockId::Alloc));
    }

    #[test]
    fn skipped_release_causes_later_panic() {
        let (mut mem, set, _) = setup();
        // Skip every lock op once: the release is skipped, so the next
        // acquire finds the lock held — the paper's sync-fault dynamic.
        let mut h = FaultHooks {
            lock_skip: Some(Cadence::every(2)),
            ..FaultHooks::none()
        };
        set.acquire(&mut mem, &mut h, LockId::Fs).unwrap(); // op1: real
        set.release(&mut mem, &mut h, LockId::Fs).unwrap(); // op2: SKIPPED
        let err = set.acquire(&mut mem, &mut h, LockId::Fs).unwrap_err(); // op3: real
        assert!(matches!(err, PanicReason::Lock(_)));
    }

    #[test]
    fn bit_flipped_lock_word_is_caught() {
        let (mut mem, set, mut h) = setup();
        mem.flip_bit(mem.layout().heap.start + LOCKS_OFFSET, 0);
        let err = set.acquire(&mut mem, &mut h, LockId::Fs).unwrap_err();
        assert!(matches!(err, PanicReason::Lock(_)));
    }
}
