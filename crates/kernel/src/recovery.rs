//! Boot paths after a crash: warm reboot (Rio) and cold boot (disk-based).
//!
//! The warm reboot follows §2.2's two steps. First, before the file system
//! initializes, the preserved memory image is scanned and recovered
//! metadata blocks are restored to their disk addresses, "so that the file
//! system is intact before being checked for consistency by fsck". Then
//! fsck runs, the file system mounts, and a user-level process replays the
//! recovered file pages through normal system calls.

use crate::error::KernelError;
use crate::fsck::{self, FsckReport};
use crate::kernel::{Kernel, KernelConfig};
use crate::machine::Machine;
use rio_core::warm::{self, WarmRebootStats};
use rio_disk::SimDisk;
use rio_mem::PhysMem;

/// Everything a reboot reports.
#[derive(Debug, Clone, Default)]
pub struct BootReport {
    /// Warm-reboot scanner statistics (absent on a cold boot).
    pub warm: Option<WarmRebootStats>,
    /// fsck findings.
    pub fsck: FsckReport,
    /// File pages successfully replayed.
    pub pages_replayed: u64,
    /// File pages whose inode no longer exists (dropped).
    pub pages_unreplayable: u64,
}

impl Kernel {
    /// Warm boot (§2.2): scan the preserved image, restore metadata, fsck,
    /// mount, replay file data.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSuperblock`] when even fsck cannot make the volume
    /// mountable (total loss; the campaign counts it as corruption).
    pub fn warm_boot(
        config: &KernelConfig,
        image: &PhysMem,
        mut disk: SimDisk,
    ) -> Result<(Kernel, BootReport), KernelError> {
        // Step 1: dump analysis + metadata restore (pre-fsck).
        let recovery = warm::scan_registry(image);
        warm::restore_metadata(&recovery, &mut disk);

        // Step 2: fsck + mount on a fresh machine.
        let fsck_report = fsck::repair(&mut disk).map_err(|_| KernelError::BadSuperblock)?;
        let mut machine = Machine::new(&config.machine);
        machine.disk = disk;
        let mut kernel = Kernel::mount(machine, config)?;

        // Step 3: user-level replay of recovered file pages through normal
        // system calls.
        let mut report = BootReport {
            warm: Some(recovery.stats),
            fsck: fsck_report,
            ..BootReport::default()
        };
        let mut pages = recovery.file_pages;
        pages.sort_by_key(|p| (p.ino, p.offset));
        for p in &pages {
            match kernel.pwrite_ino(p.ino, p.offset, &p.data) {
                Ok(()) => report.pages_replayed += 1,
                Err(KernelError::NotFound) => report.pages_unreplayable += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((kernel, report))
    }

    /// Cold boot: fsck + mount; whatever memory held is gone.
    ///
    /// # Errors
    ///
    /// As [`Kernel::warm_boot`].
    pub fn cold_boot(
        config: &KernelConfig,
        mut disk: SimDisk,
    ) -> Result<(Kernel, BootReport), KernelError> {
        let fsck_report = fsck::repair(&mut disk).map_err(|_| KernelError::BadSuperblock)?;
        let mut machine = Machine::new(&config.machine);
        machine.disk = disk;
        let kernel = Kernel::mount(machine, config)?;
        Ok((
            kernel,
            BootReport {
                warm: None,
                fsck: fsck_report,
                ..BootReport::default()
            },
        ))
    }
}
