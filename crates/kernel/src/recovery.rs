//! Boot paths after a crash: warm reboot (Rio) and cold boot (disk-based).
//!
//! The warm reboot follows §2.2's two steps. First, before the file system
//! initializes, the preserved memory image is scanned and recovered
//! metadata blocks are restored to their disk addresses, "so that the file
//! system is intact before being checked for consistency by fsck". Then
//! fsck runs, the file system mounts, and a user-level process replays the
//! recovered file pages through normal system calls.
//!
//! # Restartable recovery
//!
//! The pipeline is *resumable*: its progress is committed back into the
//! preserved image through per-entry registry flags
//! ([`rio_core::EntryFlags::RESTORED`] / [`rio_core::EntryFlags::REPLAYED`]),
//! each set only once the corresponding bytes are durably on disk. A crash
//! *during* recovery — modelled by a [`RecoveryControl`] that declines to
//! continue at a [`RecoveryPoint`] — therefore loses no recoverable data:
//! the next attempt rescans the same image, skips committed entries
//! (re-poking a restored metadata block would undo fsck repairs; the image
//! copy of a committed page is no longer trusted against outage-window
//! decay), and finishes the rest. Uncommitted work is simply redone, and
//! every step is idempotent, so any number of interrupted attempts
//! converges to the same on-disk bytes as one uninterrupted run.
//!
//! Disk I/O on the restore and fsck paths is fallible with bounded retry:
//! a transient error is retried, a permanently dead block is counted
//! ([`RecoveryIoStats`], [`FsckReport`]) and skipped — per-block
//! degradation, never a failed boot.

use crate::error::{KernelError, PanicReason};
use crate::fsck::{self, FsckReport, IO_RETRY_LIMIT};
use crate::kernel::{Kernel, KernelConfig};
use crate::machine::Machine;
use rio_core::warm::{self, WarmRebootStats};
use rio_core::Registry;
use rio_disk::{DiskIoError, SimDisk};
use rio_mem::PhysMem;

/// A checkpoint in the warm-reboot pipeline where a second crash can land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPoint {
    /// Registry scan finished; nothing applied to disk yet.
    AfterScan,
    /// About to restore metadata entry `index` to disk block `block`. A
    /// crash here interrupts the write mid-block: the block tears.
    BeforeMetadataBlock {
        /// Position in the restore order.
        index: u64,
        /// Target disk block.
        block: u64,
    },
    /// Metadata entry `index` is durably restored and committed.
    AfterMetadataBlock {
        /// Position in the restore order.
        index: u64,
    },
    /// fsck completed; about to mount.
    AfterFsck,
    /// Replay write `index` issued but not yet flushed or committed — a
    /// crash here loses only the recovery kernel's memory; the preserved
    /// image still owns the page.
    AfterReplayWrite {
        /// Position in the replay order.
        index: u64,
    },
    /// Replay page `index` flushed, drained, and committed `REPLAYED`.
    AfterReplayPage {
        /// Position in the replay order.
        index: u64,
    },
}

/// Decides, at each [`RecoveryPoint`], whether the recovery survives to
/// the next step. The fault campaign's second-crash injector implements
/// this; a plain boot uses [`NoRecoveryFaults`].
pub trait RecoveryControl {
    /// Returns `false` to crash the recovery at `point`.
    fn reached(&mut self, point: RecoveryPoint) -> bool;
}

/// The control that never interrupts: an ordinary single-shot warm boot.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRecoveryFaults;

impl RecoveryControl for NoRecoveryFaults {
    fn reached(&mut self, _point: RecoveryPoint) -> bool {
        true
    }
}

/// Fallible-I/O accounting for the metadata-restore phase (fsck keeps its
/// own counters in [`FsckReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryIoStats {
    /// Transient write errors absorbed by retrying during restore.
    pub restore_write_retries: u64,
    /// Metadata blocks that stayed unwritable after the retry budget: the
    /// restore for that block is lost (fsck sees the stale block), the
    /// boot continues.
    pub restore_blocks_unwritable: u64,
    /// Recovered metadata entries naming a block outside the disk
    /// (quarantined by range, not written).
    pub restore_blocks_skipped: u64,
}

/// Everything a reboot reports.
#[derive(Debug, Clone, Default)]
pub struct BootReport {
    /// Warm-reboot scanner statistics (absent on a cold boot).
    pub warm: Option<WarmRebootStats>,
    /// fsck findings.
    pub fsck: FsckReport,
    /// File pages successfully replayed.
    pub pages_replayed: u64,
    /// File pages that could not be replayed (inode gone, volume full,
    /// …): counted and skipped, never fatal.
    pub pages_unreplayable: u64,
    /// Restore-phase I/O degradation counters.
    pub io: RecoveryIoStats,
}

/// What survives a crash *during* recovery: the disk as the second crash
/// left it, plus where the pipeline died. The caller re-runs
/// [`Kernel::warm_boot_resumable`] with the same (progress-committed)
/// image and this disk.
#[derive(Debug)]
pub struct BootInterrupted {
    /// The disk at the moment of the second crash (a restore interrupted
    /// mid-write leaves its target block torn).
    pub disk: SimDisk,
    /// Where the recovery died.
    pub point: RecoveryPoint,
}

/// Warm-boot outcome when the recovery itself can crash.
#[derive(Debug)]
pub enum WarmBootError {
    /// The injected second crash hit; recovery can be re-run.
    Interrupted(Box<BootInterrupted>),
    /// The volume is unmountable or the recovery kernel died for real —
    /// the campaign counts it as total loss.
    Fatal(KernelError),
}

impl std::fmt::Display for WarmBootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmBootError::Interrupted(i) => {
                write!(f, "recovery interrupted at {:?}", i.point)
            }
            WarmBootError::Fatal(e) => write!(f, "warm boot failed: {e}"),
        }
    }
}

impl std::error::Error for WarmBootError {}

fn interrupted(disk: SimDisk, point: RecoveryPoint) -> WarmBootError {
    WarmBootError::Interrupted(Box::new(BootInterrupted { disk, point }))
}

/// Crashes the recovery kernel mid-replay and salvages its disk.
fn second_crash(mut kernel: Kernel, point: RecoveryPoint) -> WarmBootError {
    kernel.crash_now(PanicReason::SecondCrash);
    // The recovery kernel's own memory image is not preserved by this
    // model: un-flushed replay writes die with it, which is safe because
    // their pages were never committed REPLAYED in the original image.
    let (_lost_image, disk) = kernel.into_crash_artifacts();
    interrupted(disk, point)
}

impl Kernel {
    /// Warm boot (§2.2): scan the preserved image, restore metadata, fsck,
    /// mount, replay file data.
    ///
    /// Single-shot convenience over [`Kernel::warm_boot_resumable`]; the
    /// image is cloned so progress commits stay private.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadSuperblock`] when even fsck cannot make the volume
    /// mountable (total loss; the campaign counts it as corruption).
    pub fn warm_boot(
        config: &KernelConfig,
        image: &PhysMem,
        disk: SimDisk,
    ) -> Result<(Kernel, BootReport), KernelError> {
        let mut image = image.clone();
        match Self::warm_boot_resumable(config, &mut image, disk, &mut NoRecoveryFaults) {
            Ok(ok) => Ok(ok),
            Err(WarmBootError::Fatal(e)) => Err(e),
            Err(WarmBootError::Interrupted(_)) => {
                unreachable!("NoRecoveryFaults never interrupts")
            }
        }
    }

    /// The restartable warm reboot. Progress is committed into `image`
    /// (per-entry `RESTORED`/`REPLAYED` registry flags) as each piece of
    /// recovered data becomes durable, so when `ctl` crashes the pipeline
    /// the caller can call this again with the same image and the returned
    /// disk, and the resumed run completes exactly what is left.
    ///
    /// # Errors
    ///
    /// [`WarmBootError::Interrupted`] when `ctl` injects a second crash;
    /// [`WarmBootError::Fatal`] when the volume cannot be mounted.
    pub fn warm_boot_resumable(
        config: &KernelConfig,
        image: &mut PhysMem,
        mut disk: SimDisk,
        ctl: &mut dyn RecoveryControl,
    ) -> Result<(Kernel, BootReport), WarmBootError> {
        let registry = Registry::new(*image.layout());

        // Phase 1: dump analysis. Pure read of the image; decayed or
        // corrupt entries are quarantined by magic/mapping/CRC checks.
        let recovery = warm::scan_registry(image);
        if !ctl.reached(RecoveryPoint::AfterScan) {
            return Err(interrupted(disk, RecoveryPoint::AfterScan));
        }

        // Phase 2: metadata restore (pre-fsck), one entry at a time,
        // committing RESTORED only once the block write succeeded.
        let mut io = RecoveryIoStats::default();
        for (i, m) in recovery.metadata.iter().enumerate() {
            if m.already_restored {
                continue;
            }
            let index = i as u64;
            if m.block >= disk.num_blocks() {
                io.restore_blocks_skipped += 1;
                continue;
            }
            let point = RecoveryPoint::BeforeMetadataBlock {
                index,
                block: m.block,
            };
            if !ctl.reached(point) {
                // Crash mid-write: half the sectors land — unless the
                // block is unwritable, in which case nothing does.
                let _ = disk.try_poke_torn(m.block, &m.data);
                return Err(interrupted(disk, point));
            }
            let mut written = false;
            for _ in 0..IO_RETRY_LIMIT {
                match disk.try_poke(m.block, &m.data) {
                    Ok(()) => {
                        written = true;
                        break;
                    }
                    Err(DiskIoError::Transient) => io.restore_write_retries += 1,
                    Err(DiskIoError::Permanent) => break,
                }
            }
            if written {
                warm::commit_restored(image, &registry, m.slot);
            } else {
                // Dead target block: this restore is lost (fsck will see
                // the stale contents), the boot is not.
                io.restore_blocks_unwritable += 1;
            }
            let point = RecoveryPoint::AfterMetadataBlock { index };
            if !ctl.reached(point) {
                return Err(interrupted(disk, point));
            }
        }

        // Phase 3: fsck + mount on a fresh machine.
        let fsck_report =
            fsck::repair(&mut disk).map_err(|_| WarmBootError::Fatal(KernelError::BadSuperblock))?;
        if !ctl.reached(RecoveryPoint::AfterFsck) {
            return Err(interrupted(disk, RecoveryPoint::AfterFsck));
        }
        let mut machine = Machine::new(&config.machine);
        machine.disk = disk;
        let mut kernel = Kernel::mount(machine, config).map_err(WarmBootError::Fatal)?;

        // Phase 4: user-level replay of recovered file pages through
        // normal system calls. Replayed writes keep the recovered mtime so
        // interrupted and uninterrupted recoveries produce identical disk
        // bytes; each page is flushed (queue drained) before its REPLAYED
        // commit, making the commit point exactly the durability point.
        kernel.preserve_mtime_on_write = true;
        let mut report = BootReport {
            warm: Some(recovery.stats),
            fsck: fsck_report,
            io,
            ..BootReport::default()
        };
        let mut pages = recovery.file_pages;
        pages.sort_by_key(|p| (p.ino, p.offset));
        for (i, p) in pages.iter().enumerate() {
            if p.already_replayed {
                continue;
            }
            let index = i as u64;
            match kernel.pwrite_ino(p.ino, p.offset, &p.data) {
                Ok(()) => {}
                Err(e @ (KernelError::Crashed | KernelError::Panic(_))) => {
                    // The recovery kernel itself died: nothing further can
                    // be replayed through it.
                    return Err(WarmBootError::Fatal(e));
                }
                Err(_) => {
                    // Inode gone, volume full, file too big, …: the page
                    // is unreplayable, the boot goes on.
                    report.pages_unreplayable += 1;
                    continue;
                }
            }
            let point = RecoveryPoint::AfterReplayWrite { index };
            if !ctl.reached(point) {
                return Err(second_crash(kernel, point));
            }
            kernel
                .flush_everything(true)
                .map_err(WarmBootError::Fatal)?;
            warm::commit_replayed(image, &registry, p.slot);
            report.pages_replayed += 1;
            let point = RecoveryPoint::AfterReplayPage { index };
            if !ctl.reached(point) {
                return Err(second_crash(kernel, point));
            }
        }
        kernel.preserve_mtime_on_write = false;
        Ok((kernel, report))
    }

    /// Cold boot: fsck + mount; whatever memory held is gone.
    ///
    /// # Errors
    ///
    /// As [`Kernel::warm_boot`].
    pub fn cold_boot(
        config: &KernelConfig,
        mut disk: SimDisk,
    ) -> Result<(Kernel, BootReport), KernelError> {
        let fsck_report = fsck::repair(&mut disk).map_err(|_| KernelError::BadSuperblock)?;
        let mut machine = Machine::new(&config.machine);
        machine.disk = disk;
        let kernel = Kernel::mount(machine, config)?;
        Ok((
            kernel,
            BootReport {
                warm: None,
                fsck: fsck_report,
                ..BootReport::default()
            },
        ))
    }
}
