//! The simulated machine: memory + CPU + disk + clock + fault hooks, and
//! the kernel's wrappers around the interpreted data-path routines.
//!
//! The wrappers are where three of the §3.1 high-level faults live:
//! `bcopy` consults the copy-overrun and off-by-one hooks before running
//! the interpreted routine, and the syscall **activation record** — the
//! kernel's saved parameters, stored in the simulated stack region — is how
//! kernel-stack bit flips propagate into wrong-parameter I/O.

use crate::alloc::{heap_map, KernelAlloc};
use crate::clock::{Clock, CostModel};
use crate::error::PanicReason;
use crate::hooks::FaultHooks;
use crate::locks::LockSet;
use rio_cpu::{Cpu, KernelRoutines, Outcome, Reg, RoutineStore};
use rio_disk::{DiskModel, SimDisk};
use rio_mem::{MemBus, MemConfig, ProtectionMode};

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Memory sizing.
    pub mem: MemConfig,
    /// Disk size in blocks.
    pub disk_blocks: u64,
    /// Disk service model.
    pub disk_model: DiskModel,
    /// Number of devices the block space is striped across (1 = the
    /// classic single-spindle FIFO disk; >1 = a [`rio_disk::DiskArray`]
    /// with per-device C-LOOK queues).
    pub disk_devices: usize,
    /// Cost model.
    pub costs: CostModel,
}

impl MachineConfig {
    /// Test/campaign configuration: small memory, 16 MB disk.
    pub fn small() -> Self {
        MachineConfig {
            mem: MemConfig::small(),
            disk_blocks: 2048,
            disk_model: DiskModel::paper_scsi(),
            disk_devices: 1,
            costs: CostModel::paper(),
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::small()
    }
}

/// The hardware state of one simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Memory bus (physical memory + protection).
    pub bus: MemBus,
    /// CPU register file / interpreter.
    pub cpu: Cpu,
    /// Kernel text directory.
    pub store: RoutineStore,
    /// Installed data-path routines.
    pub routines: KernelRoutines,
    /// The disk.
    pub disk: SimDisk,
    /// Simulated clock.
    pub clock: Clock,
    /// High-level fault hooks (armed by the injector).
    pub hooks: FaultHooks,
    /// Kernel heap allocator.
    pub alloc: KernelAlloc,
    /// Kernel locks.
    pub locks: LockSet,
    /// Routine invocations so far (drives scratch-register pollution).
    invocations: u64,
}

/// Number of cold (never-dispatched) copies of the routine set installed
/// as fault-site padding.
pub const COLD_PADDING_COPIES: usize = 20;

/// Byte offsets of the fields of the syscall activation record within the
/// stack region (a frame the kernel pushes on syscall entry and re-reads
/// mid-operation, giving stack corruption a realistic propagation path).
pub mod act_record {
    /// Inode number parameter.
    pub const INO: u64 = 0;
    /// Byte-offset parameter.
    pub const OFFSET: u64 = 8;
    /// Length parameter.
    pub const LEN: u64 = 16;
    /// Frame magic (validated on re-read).
    pub const MAGIC_OFF: u64 = 24;
    /// Expected magic value.
    pub const MAGIC: u64 = 0x5249_4F53_5953_4341; // "RIOSYSCA"
}

impl Machine {
    /// Boots the hardware: zeroed memory, routines installed in kernel
    /// text, empty disk, clock at zero, no faults armed.
    pub fn new(config: &MachineConfig) -> Self {
        let mut bus = MemBus::new(config.mem);
        let mut store = RoutineStore::new(bus.layout().text);
        let routines =
            KernelRoutines::install_all(&mut bus, &mut store).expect("text sized for routines");
        // Cold-code padding: a real kernel's text is overwhelmingly code
        // that rarely runs, so most injected text/instruction faults land
        // harmlessly (the paper discards about half its runs for exactly
        // this reason). We install many cold copies of the routines that
        // are never dispatched, so random fault sites have realistic odds
        // of hitting live code.
        for i in 0..COLD_PADDING_COPIES {
            let name = format!("cold{i}");
            KernelRoutines::install_all(&mut bus, &mut store)
                .unwrap_or_else(|_| panic!("text sized for padding {name}"));
        }
        let heap = bus.layout().heap;
        let locks = LockSet::init(bus.mem_mut());
        let alloc = KernelAlloc::new(heap.start + heap_map::ARENA_OFFSET, heap.end);
        // Integrity-probe canary: a fixed pattern the kernel re-copies and
        // re-checks at every syscall entry.
        for i in 0..heap_map::CANARY_LEN {
            bus.mem_mut().write_u8(
                heap.start + heap_map::CANARY_OFFSET + i,
                0xC3 ^ (i as u8).wrapping_mul(7),
            );
        }
        Machine {
            bus,
            cpu: Cpu::new(),
            store,
            routines,
            disk: SimDisk::new_striped(config.disk_blocks, config.disk_model, config.disk_devices),
            clock: Clock::new(config.costs),
            hooks: FaultHooks::none(),
            alloc,
            locks,
            invocations: 0,
        }
    }

    /// Caller-saved scratch registers (r10-r15) are clobbered by whatever
    /// kernel code ran since the last routine call; model that with
    /// deterministic garbage. This is what makes the skipped-initialization
    /// fault behave realistically: an uninitialized length register holds
    /// unpredictable junk, usually producing a wild access (quick crash, or
    /// a protection save) rather than a stable silent no-op.
    fn pollute_scratch(&mut self) {
        self.invocations += 1;
        let mut x = self.invocations.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        for r in 10..16u8 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.cpu.set_reg(Reg(r), x);
        }
    }

    /// The kernel's self-check, run at every syscall entry. A production
    /// kernel's data paths (networking, VM, scheduling) exercise `bcopy`
    /// constantly and their consistency checks stop a sick system within
    /// moments — §3.3 credits exactly this "multitude of consistency
    /// checks" for memory's unexpected safety. Our kernel's only bcopy
    /// users are file operations, so we model the rest of the kernel with
    /// this probe: copy a canary through the (possibly corrupted) data
    /// path and panic on any discrepancy.
    ///
    /// # Errors
    ///
    /// [`PanicReason`] when the data path is broken (system crashes).
    pub fn integrity_probe(&mut self) -> Result<(), PanicReason> {
        let heap = self.bus.layout().heap.start;
        let canary = heap + heap_map::CANARY_OFFSET;
        let scratch = heap + heap_map::SCRATCH_OFFSET;
        self.bzero(scratch, heap_map::CANARY_LEN)?;
        self.bcopy(canary, scratch, heap_map::CANARY_LEN)?;
        match self.bcmp(canary, scratch, heap_map::CANARY_LEN)? {
            true => Ok(()),
            false => Err(PanicReason::Consistency(
                "kernel memory consistency check failed".to_owned(),
            )),
        }
    }

    fn patched(&self) -> bool {
        self.bus.protection().mode() == ProtectionMode::CodePatching
    }

    fn finish(&mut self, outcome: Outcome, steps: u64) -> Result<(), PanicReason> {
        self.clock.charge_steps(steps, self.patched());
        match outcome {
            Outcome::Done => Ok(()),
            Outcome::Panic(cause) => Err(cause.into()),
            Outcome::StepLimit => Err(PanicReason::Watchdog),
        }
    }

    /// Runs the interpreted `bcopy`, applying the copy-overrun and
    /// off-by-one fault hooks to the length. Returns the **effective**
    /// length the routine was asked to copy (post-hooks), which callers use
    /// to track exactly which bytes a (possibly faulty) copy touched.
    ///
    /// Addresses may carry the KSEG tag (see [`rio_cpu::kseg_addr`]); the
    /// caller must have opened protection windows for the *intended*
    /// destination pages — an overrun beyond them traps, which is the
    /// §3.3 protection save.
    ///
    /// # Errors
    ///
    /// [`PanicReason`] when the routine panics (the kernel crashes).
    pub fn bcopy(&mut self, src: u64, dst: u64, len: u64) -> Result<u64, PanicReason> {
        let effective = self.hooks.bcopy_len(len);
        let limit = effective * 8 + 1_000;
        self.pollute_scratch();
        self.cpu.set_reg(Reg(1), src);
        self.cpu.set_reg(Reg(2), dst);
        self.cpu.set_reg(Reg(3), effective);
        let run = self
            .cpu
            .run(&mut self.bus, &self.store, self.routines.bcopy, limit);
        self.finish(run.outcome, run.steps)?;
        Ok(effective)
    }

    /// Runs the interpreted `bzero`.
    ///
    /// # Errors
    ///
    /// As [`Machine::bcopy`].
    pub fn bzero(&mut self, dst: u64, len: u64) -> Result<(), PanicReason> {
        let limit = len * 8 + 1_000;
        self.pollute_scratch();
        self.cpu.set_reg(Reg(1), dst);
        self.cpu.set_reg(Reg(2), len);
        let run = self
            .cpu
            .run(&mut self.bus, &self.store, self.routines.bzero, limit);
        self.finish(run.outcome, run.steps)
    }

    /// Runs the interpreted `bcmp`; `Ok(true)` means equal.
    ///
    /// # Errors
    ///
    /// As [`Machine::bcopy`].
    pub fn bcmp(&mut self, a: u64, b: u64, len: u64) -> Result<bool, PanicReason> {
        let limit = len * 12 + 1_000;
        self.pollute_scratch();
        self.cpu.set_reg(Reg(1), a);
        self.cpu.set_reg(Reg(2), b);
        self.cpu.set_reg(Reg(3), len);
        let run = self
            .cpu
            .run(&mut self.bus, &self.store, self.routines.bcmp, limit);
        self.finish(run.outcome, run.steps)?;
        Ok(self.cpu.reg(Reg(10)) == 0)
    }

    /// Pushes the syscall activation record to the simulated stack.
    pub fn push_act_record(&mut self, ino: u64, offset: u64, len: u64) {
        let base = self.bus.layout().stack.start;
        let mem = self.bus.mem_mut();
        mem.write_u64(base + act_record::INO, ino);
        mem.write_u64(base + act_record::OFFSET, offset);
        mem.write_u64(base + act_record::LEN, len);
        mem.write_u64(base + act_record::MAGIC_OFF, act_record::MAGIC);
    }

    /// Re-reads the activation record mid-operation, validating its magic.
    /// Returns `(ino, offset, len)` — possibly corrupted by stack faults,
    /// which is the point: the kernel then acts on bad parameters
    /// (indirect corruption, §3.2).
    ///
    /// # Errors
    ///
    /// Kernel panic when the frame magic is corrupt.
    pub fn read_act_record(&self) -> Result<(u64, u64, u64), PanicReason> {
        let base = self.bus.layout().stack.start;
        let mem = self.bus.mem();
        if mem.read_u64(base + act_record::MAGIC_OFF) != act_record::MAGIC {
            return Err(PanicReason::Consistency(
                "trap: corrupted kernel stack frame".to_owned(),
            ));
        }
        Ok((
            mem.read_u64(base + act_record::INO),
            mem.read_u64(base + act_record::OFFSET),
            mem.read_u64(base + act_record::LEN),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::{Cadence, OverrunSpec};
    use rio_cpu::kseg_addr;
    use rio_mem::PageNum;

    fn machine() -> Machine {
        Machine::new(&MachineConfig::small())
    }

    #[test]
    fn bcopy_moves_bytes_and_charges_time() {
        let mut m = machine();
        let src = m.bus.layout().heap.start + 16384;
        let dst = m.bus.layout().ubc.start;
        m.bus.mem_mut().write_bytes(src, b"rio file cache");
        let before = m.clock.now();
        m.bcopy(src, dst, 8192).unwrap();
        assert_eq!(m.bus.mem().slice(dst, 14), b"rio file cache");
        assert!(m.clock.now() > before, "interpreted steps charged");
    }

    #[test]
    fn overrun_hook_extends_copy() {
        let mut m = machine();
        m.hooks.copy_overrun = Some(OverrunSpec::new(Cadence::every(1), vec![4]));
        let src = m.bus.layout().heap.start + 4096;
        let dst = m.bus.layout().ubc.start;
        m.bus.mem_mut().fill(src, 20, 0x77);
        m.bcopy(src, dst, 8).unwrap();
        // 8 requested, 12 copied.
        assert_eq!(m.bus.mem().read_u8(dst + 11), 0x77);
    }

    #[test]
    fn overrun_into_protected_page_is_trapped() {
        let mut m = machine();
        // Protect everything in the UBC except the first page (the write
        // window), then overrun past the page boundary.
        m.bus
            .protection_mut()
            .set_mode(rio_mem::ProtectionMode::Hardware);
        m.bus.protection_mut().set_kseg_through_tlb(true);
        let second = PageNum::containing(m.bus.layout().ubc.start + 8192);
        m.bus.protection_mut().protect(second);
        m.hooks.copy_overrun = Some(OverrunSpec::new(Cadence::every(1), vec![100]));
        let src = m.bus.layout().heap.start + 4096;
        let dst = kseg_addr(m.bus.layout().ubc.start + 8192 - 50);
        let err = m.bcopy(src, dst, 50).unwrap_err();
        assert!(err.is_protection_trap(), "got {err:?}");
        // The protected page is untouched.
        assert_eq!(m.bus.mem().read_u8(second.base()), 0);
    }

    #[test]
    fn bzero_and_bcmp_work() {
        let mut m = machine();
        let a = m.bus.layout().heap.start + 8192;
        let b = a + 4096;
        m.bus.mem_mut().fill(a, 64, 3);
        m.bus.mem_mut().fill(b, 64, 3);
        assert!(m.bcmp(a, b, 64).unwrap());
        m.bzero(a, 64).unwrap();
        assert!(!m.bcmp(a, b, 64).unwrap());
    }

    #[test]
    fn act_record_round_trips_and_detects_corruption() {
        let mut m = machine();
        m.push_act_record(7, 8192, 100);
        assert_eq!(m.read_act_record().unwrap(), (7, 8192, 100));
        // Corrupt the magic: detected.
        let base = m.bus.layout().stack.start;
        m.bus.mem_mut().flip_bit(base + act_record::MAGIC_OFF, 5);
        assert!(m.read_act_record().is_err());
    }

    #[test]
    fn act_record_parameter_corruption_goes_undetected() {
        // The dangerous case: a flipped *parameter* (not magic) silently
        // yields wrong I/O parameters — indirect corruption.
        let mut m = machine();
        m.push_act_record(7, 8192, 100);
        let base = m.bus.layout().stack.start;
        m.bus.mem_mut().flip_bit(base + act_record::OFFSET + 1, 5);
        let (ino, off, len) = m.read_act_record().unwrap();
        assert_eq!((ino, len), (7, 100));
        assert_ne!(off, 8192);
    }

    #[test]
    fn wild_bcopy_crashes_with_illegal_address() {
        let mut m = machine();
        let err = m
            .bcopy(m.bus.layout().heap.start, 0xDEAD_0000_0000, 8)
            .unwrap_err();
        assert!(matches!(err, PanicReason::Mem(_)));
    }
}
