//! Kernel error and crash types.
//!
//! A [`KernelError`] is what a syscall returns to its caller. Most variants
//! are ordinary Unix errno-style failures; [`KernelError::Panic`] means the
//! kernel hit a machine check or consistency check mid-operation and the
//! *system has crashed* — the caller (workload driver / crash harness) must
//! stop issuing syscalls and take the memory image.

use rio_cpu::interp::PanicCause;
use rio_disk::SimTime;
use rio_mem::MemFault;

/// Why the kernel panicked (the crash-message taxonomy; the campaign
/// reports how many distinct messages it saw, mirroring the paper's "74
/// unique error messages").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicReason {
    /// A memory access faulted (illegal address or protection violation).
    Mem(MemFault),
    /// The CPU interpreter panicked (illegal instruction, wild PC, check).
    Cpu(String),
    /// A kernel consistency check failed (bad magic, impossible state).
    Consistency(String),
    /// A lock assertion failed (double acquire / release of unheld lock).
    Lock(String),
    /// The in-kernel watchdog fired (runaway loop in a data path).
    Watchdog,
    /// A second crash hit while the warm reboot itself was running (the
    /// recovery campaign's re-crash injector).
    SecondCrash,
}

impl PanicReason {
    /// Whether the panic was a Rio protection trap — the counter behind
    /// §3.3's "eight crashes where the protection mechanism was invoked".
    pub fn is_protection_trap(&self) -> bool {
        matches!(
            self,
            PanicReason::Mem(MemFault::ProtectionViolation { .. })
                | PanicReason::Cpu(_)
        ) && match self {
            PanicReason::Mem(MemFault::ProtectionViolation { .. }) => true,
            PanicReason::Cpu(s) => s.contains("write-protection violation"),
            _ => false,
        }
    }

    /// A short stable message for unique-crash-message statistics
    /// (addresses stripped, categories kept).
    pub fn message(&self) -> String {
        match self {
            PanicReason::Mem(MemFault::BadAddress { .. }) => {
                "trap: illegal address".to_owned()
            }
            PanicReason::Mem(MemFault::ProtectionViolation { kseg, .. }) => {
                format!(
                    "trap: write to protected file cache ({} route)",
                    if *kseg { "kseg" } else { "virtual" }
                )
            }
            PanicReason::Cpu(s) => format!("machine check: {s}"),
            PanicReason::Consistency(s) => format!("panic: {s}"),
            PanicReason::Lock(s) => format!("lock assertion: {s}"),
            PanicReason::Watchdog => "watchdog: kernel loop timeout".to_owned(),
            PanicReason::SecondCrash => "panic: crashed during recovery".to_owned(),
        }
    }
}

impl From<PanicCause> for PanicReason {
    fn from(c: PanicCause) -> Self {
        match c {
            PanicCause::MemFault(f) => PanicReason::Mem(f),
            other => PanicReason::Cpu(strip_numbers(&other.to_string())),
        }
    }
}

/// Strips digits so crash messages group by kind, not by address.
fn strip_numbers(s: &str) -> String {
    s.chars().filter(|c| !c.is_ascii_digit()).collect()
}

/// Details of a crash, recorded by the kernel at panic time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashInfo {
    /// What went wrong.
    pub reason: PanicReason,
    /// Simulated time of the crash.
    pub at: SimTime,
}

/// Errors returned by kernel syscalls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The system has already crashed; no further syscalls are served.
    Crashed,
    /// The kernel panicked during this syscall (system is now crashed).
    Panic(PanicReason),
    /// Path component not found.
    NotFound,
    /// Target already exists.
    Exists,
    /// A non-final path component is not a directory, or a directory op hit
    /// a regular file.
    NotDir,
    /// A file operation hit a directory.
    IsDir,
    /// Directory not empty (rmdir).
    NotEmpty,
    /// No free data blocks.
    NoSpace,
    /// No free inodes.
    NoInodes,
    /// Name longer than the directory entry limit.
    NameTooLong,
    /// Write past the maximum file size.
    FileTooBig,
    /// Malformed path.
    InvalidPath,
    /// Unknown or closed file descriptor.
    BadFd,
    /// Mount failed: superblock invalid.
    BadSuperblock,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Crashed => f.write_str("system has crashed"),
            KernelError::Panic(r) => write!(f, "kernel panic: {}", r.message()),
            KernelError::NotFound => f.write_str("no such file or directory"),
            KernelError::Exists => f.write_str("file exists"),
            KernelError::NotDir => f.write_str("not a directory"),
            KernelError::IsDir => f.write_str("is a directory"),
            KernelError::NotEmpty => f.write_str("directory not empty"),
            KernelError::NoSpace => f.write_str("no space left on device"),
            KernelError::NoInodes => f.write_str("no free inodes"),
            KernelError::NameTooLong => f.write_str("file name too long"),
            KernelError::FileTooBig => f.write_str("file too large"),
            KernelError::InvalidPath => f.write_str("invalid path"),
            KernelError::BadFd => f.write_str("bad file descriptor"),
            KernelError::BadSuperblock => f.write_str("bad superblock"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_mem::PageNum;

    #[test]
    fn protection_trap_detection() {
        let trap = PanicReason::Mem(MemFault::ProtectionViolation {
            addr: 0x100,
            page: PageNum(0),
            kseg: false,
        });
        assert!(trap.is_protection_trap());
        let bad = PanicReason::Mem(MemFault::BadAddress { addr: 0, len: 1 });
        assert!(!bad.is_protection_trap());
        assert!(!PanicReason::Watchdog.is_protection_trap());
    }

    #[test]
    fn messages_are_address_free() {
        let a = PanicReason::Mem(MemFault::BadAddress { addr: 0x1234, len: 8 });
        let b = PanicReason::Mem(MemFault::BadAddress { addr: 0x9999, len: 1 });
        assert_eq!(a.message(), b.message());
    }

    #[test]
    fn cpu_causes_convert_and_group() {
        let c1: PanicReason =
            PanicCause::IllegalInstruction { index: 5, reason: "illegal opcode 0xfe".into() }
                .into();
        let c2: PanicReason =
            PanicCause::IllegalInstruction { index: 9, reason: "illegal opcode 0xee".into() }
                .into();
        // Same kind, different indices/opcodes → digits stripped, but hex
        // letters may differ; messages still mention machine check.
        assert!(c1.message().starts_with("machine check"));
        assert!(c2.message().starts_with("machine check"));
        let mf: PanicReason = PanicCause::MemFault(MemFault::BadAddress { addr: 1, len: 2 }).into();
        assert_eq!(mf, PanicReason::Mem(MemFault::BadAddress { addr: 1, len: 2 }));
    }

    #[test]
    fn kernel_error_display_nonempty() {
        for e in [
            KernelError::Crashed,
            KernelError::NotFound,
            KernelError::NoSpace,
            KernelError::Panic(PanicReason::Watchdog),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
