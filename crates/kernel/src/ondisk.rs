//! On-disk format: superblock, inode table, allocation bitmap, journal
//! area, and directory entries.
//!
//! The format is a compact UFS-like layout:
//!
//! ```text
//! block 0          superblock
//! 1 .. 1+I         inode table   (32 inodes of 256 bytes per 8 KB block)
//! .. +B            block bitmap  (1 bit per block)
//! .. +J            journal area  (used only by the AdvFS policy)
//! .. end           data blocks
//! ```
//!
//! Every structure carries a magic tag; the kernel validates tags on access
//! and panics on mismatch — these are the "multitude of consistency checks"
//! that §3.3 credits for stopping a sick system quickly.

use rio_disk::BLOCK_SIZE;

/// Superblock magic ("RioF").
pub const SUPER_MAGIC: u32 = 0x5269_6F46;
/// In-use inode magic ("INOD" -> arbitrary tag).
pub const INODE_MAGIC: u32 = 0x494E_4F44;
/// Bytes per on-disk inode record.
pub const INODE_BYTES: usize = 256;
/// Inode records per block.
pub const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_BYTES) as u64;
/// Direct block pointers per inode.
pub const NDIRECT: usize = 16;
/// Block pointers in an indirect block.
pub const NINDIRECT: usize = BLOCK_SIZE / 8;
/// Maximum file size in blocks.
pub const MAX_FILE_BLOCKS: u64 = NDIRECT as u64 + NINDIRECT as u64;
/// Bytes per directory entry.
pub const DIRENT_BYTES: usize = 64;
/// Directory entries per block.
pub const DIRENTS_PER_BLOCK: usize = BLOCK_SIZE / DIRENT_BYTES;
/// Maximum file-name length (bytes).
pub const MAX_NAME: usize = DIRENT_BYTES - 5;
/// The root directory's inode number (0 is reserved/invalid).
pub const ROOT_INO: u64 = 1;

/// File type stored in an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Unallocated inode.
    Free,
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

impl FileType {
    fn to_u32(self) -> u32 {
        match self {
            FileType::Free => 0,
            FileType::File => 1,
            FileType::Dir => 2,
        }
    }

    fn from_u32(v: u32) -> Option<FileType> {
        match v {
            0 => Some(FileType::Free),
            1 => Some(FileType::File),
            2 => Some(FileType::Dir),
            _ => None,
        }
    }
}

/// Static geometry derived from a disk size: where each area begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Total blocks on the device.
    pub num_blocks: u64,
    /// Total inodes.
    pub num_inodes: u64,
    /// Blocks reserved for the journal area.
    pub journal_blocks: u64,
    /// First inode-table block (always 1).
    pub inode_start: u64,
    /// Inode-table length in blocks.
    pub inode_len: u64,
    /// First bitmap block.
    pub bitmap_start: u64,
    /// Bitmap length in blocks.
    pub bitmap_len: u64,
    /// First journal block.
    pub journal_start: u64,
    /// First data block.
    pub data_start: u64,
}

impl DiskGeometry {
    /// Computes the geometry for a device.
    ///
    /// # Panics
    ///
    /// Panics if the device is too small to hold the metadata areas plus at
    /// least one data block.
    pub fn new(num_blocks: u64, num_inodes: u64, journal_blocks: u64) -> Self {
        let inode_start = 1;
        let inode_len = num_inodes.div_ceil(INODES_PER_BLOCK);
        let bitmap_start = inode_start + inode_len;
        let bitmap_len = num_blocks.div_ceil(8 * BLOCK_SIZE as u64);
        let journal_start = bitmap_start + bitmap_len;
        let data_start = journal_start + journal_blocks;
        assert!(
            data_start < num_blocks,
            "disk too small: metadata needs {data_start} blocks, have {num_blocks}"
        );
        DiskGeometry {
            num_blocks,
            num_inodes,
            journal_blocks,
            inode_start,
            inode_len,
            bitmap_start,
            bitmap_len,
            journal_start,
            data_start,
        }
    }

    /// Geometry for the test/campaign disk: 16 MB, 512 inodes, 64 journal
    /// blocks.
    pub fn small() -> Self {
        DiskGeometry::new(2048, 512, 64)
    }

    /// The block holding inode `ino` and the byte offset of its record.
    pub fn inode_location(&self, ino: u64) -> (u64, usize) {
        let block = self.inode_start + ino / INODES_PER_BLOCK;
        let offset = (ino % INODES_PER_BLOCK) as usize * INODE_BYTES;
        (block, offset)
    }

    /// The bitmap block and bit position tracking data block `b`.
    pub fn bitmap_location(&self, b: u64) -> (u64, usize) {
        let per_block = 8 * BLOCK_SIZE as u64;
        (self.bitmap_start + b / per_block, (b % per_block) as usize)
    }

    /// Number of data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.num_blocks - self.data_start
    }
}

/// The superblock (block 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Device geometry.
    pub geometry: DiskGeometry,
    /// Incremented at every mount (distinguishes generations).
    pub mount_count: u64,
}

impl Superblock {
    /// Encodes to a full block.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        b[8..16].copy_from_slice(&self.geometry.num_blocks.to_le_bytes());
        b[16..24].copy_from_slice(&self.geometry.num_inodes.to_le_bytes());
        b[24..32].copy_from_slice(&self.geometry.journal_blocks.to_le_bytes());
        b[32..40].copy_from_slice(&self.mount_count.to_le_bytes());
        b
    }

    /// Decodes from a block; `None` if the magic is wrong (mount fails).
    pub fn decode(b: &[u8]) -> Option<Superblock> {
        if u32::from_le_bytes(b[0..4].try_into().ok()?) != SUPER_MAGIC {
            return None;
        }
        let num_blocks = u64::from_le_bytes(b[8..16].try_into().ok()?);
        let num_inodes = u64::from_le_bytes(b[16..24].try_into().ok()?);
        let journal_blocks = u64::from_le_bytes(b[24..32].try_into().ok()?);
        let mount_count = u64::from_le_bytes(b[32..40].try_into().ok()?);
        // Reject impossible geometry rather than panicking in the
        // constructor: a corrupt superblock must fail the mount, not the
        // simulator.
        let inode_len = num_inodes.div_ceil(INODES_PER_BLOCK);
        let bitmap_len = num_blocks.div_ceil(8 * BLOCK_SIZE as u64);
        if 1 + inode_len + bitmap_len + journal_blocks >= num_blocks {
            return None;
        }
        Some(Superblock {
            geometry: DiskGeometry::new(num_blocks, num_inodes, journal_blocks),
            mount_count,
        })
    }
}

/// A decoded inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File type.
    pub itype: FileType,
    /// Link count.
    pub nlink: u32,
    /// File size in bytes.
    pub size: u64,
    /// Last-modification time (simulated µs).
    pub mtime: u64,
    /// Direct block pointers (0 = hole/unallocated).
    pub direct: [u64; NDIRECT],
    /// Indirect block pointer (0 = none).
    pub indirect: u64,
}

impl Inode {
    /// A freshly allocated empty inode.
    pub fn empty(itype: FileType) -> Inode {
        Inode {
            itype,
            nlink: 1,
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            indirect: 0,
        }
    }

    /// Encodes into a 256-byte record.
    pub fn encode(&self) -> [u8; INODE_BYTES] {
        let mut b = [0u8; INODE_BYTES];
        let magic = if self.itype == FileType::Free { 0 } else { INODE_MAGIC };
        b[0..4].copy_from_slice(&magic.to_le_bytes());
        b[4..8].copy_from_slice(&self.itype.to_u32().to_le_bytes());
        b[8..12].copy_from_slice(&self.nlink.to_le_bytes());
        b[16..24].copy_from_slice(&self.size.to_le_bytes());
        b[24..32].copy_from_slice(&self.mtime.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            b[32 + i * 8..40 + i * 8].copy_from_slice(&d.to_le_bytes());
        }
        b[32 + NDIRECT * 8..40 + NDIRECT * 8].copy_from_slice(&self.indirect.to_le_bytes());
        b
    }

    /// Decodes a 256-byte record.
    ///
    /// Returns `Ok(None)` for a free (zero-magic) record and `Err(())` for
    /// a corrupt one — the kernel panics on the latter ("bad inode magic").
    #[allow(clippy::result_unit_err)] // the only failure is "corrupt": the
    // caller's response is always a kernel panic, so no error payload helps
    pub fn decode(b: &[u8]) -> Result<Option<Inode>, ()> {
        assert_eq!(b.len(), INODE_BYTES);
        let magic = u32::from_le_bytes(b[0..4].try_into().expect("4 bytes"));
        if magic == 0 {
            return Ok(None);
        }
        if magic != INODE_MAGIC {
            return Err(());
        }
        let itype = FileType::from_u32(u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")))
            .ok_or(())?;
        if itype == FileType::Free {
            return Err(()); // live magic on a free record is corruption
        }
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u64::from_le_bytes(b[32 + i * 8..40 + i * 8].try_into().expect("8 bytes"));
        }
        Ok(Some(Inode {
            itype,
            nlink: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            size: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
            mtime: u64::from_le_bytes(b[24..32].try_into().expect("8 bytes")),
            direct,
            indirect: u64::from_le_bytes(
                b[32 + NDIRECT * 8..40 + NDIRECT * 8]
                    .try_into()
                    .expect("8 bytes"),
            ),
        }))
    }
}

/// A directory entry: `ino:u32, name_len:u8, name bytes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number (never 0 for a live entry).
    pub ino: u64,
    /// Entry name.
    pub name: String,
}

impl DirEntry {
    /// Encodes into a 64-byte slot.
    ///
    /// # Panics
    ///
    /// Panics if the name exceeds [`MAX_NAME`] bytes (callers validate and
    /// return [`crate::KernelError::NameTooLong`] first).
    pub fn encode(&self) -> [u8; DIRENT_BYTES] {
        let name = self.name.as_bytes();
        assert!(name.len() <= MAX_NAME, "dirent name too long");
        let mut b = [0u8; DIRENT_BYTES];
        b[0..4].copy_from_slice(&(self.ino as u32).to_le_bytes());
        b[4] = name.len() as u8;
        b[5..5 + name.len()].copy_from_slice(name);
        b
    }

    /// Decodes a 64-byte slot; `None` if the slot is free or garbled.
    pub fn decode(b: &[u8]) -> Option<DirEntry> {
        assert_eq!(b.len(), DIRENT_BYTES);
        let ino = u32::from_le_bytes(b[0..4].try_into().ok()?) as u64;
        if ino == 0 {
            return None;
        }
        let len = b[4] as usize;
        if len == 0 || len > MAX_NAME {
            return None;
        }
        let name = std::str::from_utf8(&b[5..5 + len]).ok()?;
        Some(DirEntry {
            ino,
            name: name.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_areas_are_disjoint_and_ordered() {
        let g = DiskGeometry::small();
        assert_eq!(g.inode_start, 1);
        assert!(g.inode_start < g.bitmap_start);
        assert!(g.bitmap_start < g.journal_start);
        assert!(g.journal_start < g.data_start);
        assert!(g.data_start < g.num_blocks);
        assert_eq!(g.inode_len, 512 / INODES_PER_BLOCK);
        assert!(g.data_blocks() > 1900);
    }

    #[test]
    fn inode_location_spans_table() {
        let g = DiskGeometry::small();
        let (b0, o0) = g.inode_location(0);
        assert_eq!((b0, o0), (1, 0));
        let (b1, o1) = g.inode_location(31);
        assert_eq!((b1, o1), (1, 31 * INODE_BYTES));
        let (b2, o2) = g.inode_location(32);
        assert_eq!((b2, o2), (2, 0));
    }

    #[test]
    fn bitmap_location_maps_bits() {
        let g = DiskGeometry::small();
        let (blk, bit) = g.bitmap_location(0);
        assert_eq!((blk, bit), (g.bitmap_start, 0));
        let (blk, bit) = g.bitmap_location(100);
        assert_eq!((blk, bit), (g.bitmap_start, 100));
    }

    #[test]
    fn superblock_round_trips() {
        let sb = Superblock {
            geometry: DiskGeometry::small(),
            mount_count: 7,
        };
        let d = Superblock::decode(&sb.encode()).unwrap();
        assert_eq!(d, sb);
    }

    #[test]
    fn corrupt_superblock_fails_decode() {
        let sb = Superblock {
            geometry: DiskGeometry::small(),
            mount_count: 1,
        };
        let mut b = sb.encode();
        b[0] ^= 1;
        assert_eq!(Superblock::decode(&b), None);
        // Impossible geometry also rejected.
        let mut b2 = sb.encode();
        b2[8..16].copy_from_slice(&2u64.to_le_bytes()); // 2-block disk
        assert_eq!(Superblock::decode(&b2), None);
    }

    #[test]
    fn inode_round_trips() {
        let mut ino = Inode::empty(FileType::File);
        ino.size = 12345;
        ino.direct[0] = 200;
        ino.direct[15] = 215;
        ino.indirect = 300;
        let d = Inode::decode(&ino.encode()).unwrap().unwrap();
        assert_eq!(d, ino);
    }

    #[test]
    fn free_inode_decodes_to_none() {
        let rec = [0u8; INODE_BYTES];
        assert_eq!(Inode::decode(&rec), Ok(None));
        // Encoding a Free inode produces a zero-magic record.
        let enc = Inode::empty(FileType::Free).encode();
        assert_eq!(Inode::decode(&enc), Ok(None));
    }

    #[test]
    fn corrupt_inode_magic_is_error() {
        let mut rec = Inode::empty(FileType::File).encode();
        rec[2] ^= 0x40;
        assert_eq!(Inode::decode(&rec), Err(()));
        // Corrupt type field is also an error.
        let mut rec2 = Inode::empty(FileType::File).encode();
        rec2[4] = 9;
        assert_eq!(Inode::decode(&rec2), Err(()));
    }

    #[test]
    fn dirent_round_trips() {
        let e = DirEntry {
            ino: 42,
            name: "hello.txt".to_owned(),
        };
        assert_eq!(DirEntry::decode(&e.encode()), Some(e));
    }

    #[test]
    fn free_and_garbled_dirents_decode_to_none() {
        assert_eq!(DirEntry::decode(&[0u8; DIRENT_BYTES]), None);
        let mut b = DirEntry {
            ino: 1,
            name: "x".to_owned(),
        }
        .encode();
        b[4] = 200; // impossible length
        assert_eq!(DirEntry::decode(&b), None);
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn oversized_name_panics_encode() {
        DirEntry {
            ino: 1,
            name: "x".repeat(MAX_NAME + 1),
        }
        .encode();
    }

    #[test]
    fn max_file_is_direct_plus_indirect() {
        assert_eq!(MAX_FILE_BLOCKS, 16 + 1024);
        assert_eq!(DIRENTS_PER_BLOCK, 128);
    }
}
