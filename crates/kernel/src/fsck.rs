//! `fsck`-lite: post-crash consistency repair for cold (and warm) boots.
//!
//! Runs directly against the disk before mount, like real fsck: validates
//! the superblock, clears corrupt or torn inode records, drops wild block
//! pointers, removes directory entries that reference free inodes, and
//! rebuilds the allocation bitmap from the reachable block set. Repairs
//! lose data (that is what the reliability experiments count); they never
//! crash.

use crate::ondisk::{
    DirEntry, DiskGeometry, FileType, Inode, Superblock, DIRENTS_PER_BLOCK, DIRENT_BYTES,
    INODES_PER_BLOCK, INODE_BYTES, NDIRECT, NINDIRECT,
};
use rio_disk::{DiskIoError, SimDisk, BLOCK_SIZE};

/// Bounded retry budget for one block access: a transient fault injected
/// with up to `IO_RETRY_LIMIT - 1` failures always clears within it.
pub(crate) const IO_RETRY_LIMIT: u32 = 4;

/// What fsck found and fixed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Inode records cleared (corrupt magic/type, or resident in a torn
    /// block).
    pub inodes_cleared: u64,
    /// Block pointers dropped (out of range).
    pub pointers_cleared: u64,
    /// Directory entries removed (dangling inode references).
    pub dirents_removed: u64,
    /// Torn data blocks observed (left in place; contents are suspect).
    pub torn_data_blocks: u64,
    /// Transient read errors absorbed by retrying.
    pub read_retries: u64,
    /// Transient write errors absorbed by retrying.
    pub write_retries: u64,
    /// Blocks that stayed unreadable after the retry budget: treated as
    /// empty and skipped, never fatal (graceful per-block degradation).
    pub blocks_unreadable: u64,
    /// Blocks whose repair could not be written back after retries: the
    /// old contents stand, counted but never fatal.
    pub blocks_unwritable: u64,
    /// Whether the bitmap needed rebuilding.
    pub bitmap_rebuilt: bool,
}

/// Fatal fsck outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckError {
    /// The superblock does not decode: the volume is unmountable and all
    /// data is lost (counted as total corruption by the campaign).
    BadSuperblock,
}

impl std::fmt::Display for FsckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("fsck: unrecoverable superblock")
    }
}

impl std::error::Error for FsckError {}

/// Reads `block` through the fallible path with bounded retry. `None`
/// means the block is unreadable even after retries; the caller treats it
/// as empty and continues — a dead block degrades that block, not the boot.
fn read_block(disk: &mut SimDisk, block: u64, report: &mut FsckReport) -> Option<Vec<u8>> {
    for _ in 0..IO_RETRY_LIMIT {
        match disk.try_peek(block) {
            Ok(data) => return Some(data.to_vec()),
            Err(DiskIoError::Transient) => {
                report.read_retries += 1;
                if rio_obs::is_enabled() {
                    rio_obs::emit(
                        rio_obs::EventCategory::FsckRetry,
                        rio_obs::Payload::Block { block, aux: 0 },
                    );
                }
            }
            Err(DiskIoError::Permanent) => break,
        }
    }
    report.blocks_unreadable += 1;
    None
}

/// Writes `block` through the fallible path with bounded retry. On final
/// failure the repair is abandoned for this block (old contents stand).
fn write_block(disk: &mut SimDisk, block: u64, data: &[u8], report: &mut FsckReport) {
    for _ in 0..IO_RETRY_LIMIT {
        match disk.try_poke(block, data) {
            Ok(()) => return,
            Err(DiskIoError::Transient) => {
                report.write_retries += 1;
                if rio_obs::is_enabled() {
                    rio_obs::emit(
                        rio_obs::EventCategory::FsckRetry,
                        rio_obs::Payload::Block { block, aux: 1 },
                    );
                }
            }
            Err(DiskIoError::Permanent) => break,
        }
    }
    report.blocks_unwritable += 1;
}

/// Checks and repairs the file system on `disk`.
///
/// # Errors
///
/// [`FsckError::BadSuperblock`] when block 0 is unusable.
pub fn repair(disk: &mut SimDisk) -> Result<FsckReport, FsckError> {
    let mut report = FsckReport::default();
    let sb_bytes = read_block(disk, 0, &mut report).ok_or(FsckError::BadSuperblock)?;
    let sb = Superblock::decode(&sb_bytes).ok_or(FsckError::BadSuperblock)?;
    let g = sb.geometry;

    // Pass 1: inode records.
    let mut live_inodes: Vec<u64> = Vec::new();
    for iblock in g.inode_start..g.inode_start + g.inode_len {
        let torn = disk.is_torn(iblock);
        let Some(mut data) = read_block(disk, iblock, &mut report) else {
            // Unreadable inode block: every inode in it is lost. The rest
            // of the volume still gets checked.
            continue;
        };
        let mut changed = false;
        for slot in 0..INODES_PER_BLOCK as usize {
            let off = slot * INODE_BYTES;
            let ino = (iblock - g.inode_start) * INODES_PER_BLOCK + slot as u64;
            if ino >= g.num_inodes {
                break;
            }
            let rec = &data[off..off + INODE_BYTES];
            match Inode::decode(rec) {
                Ok(None) => {}
                Ok(Some(mut inode)) => {
                    if torn {
                        // Contents suspect: keep the record only if its
                        // pointers validate (second half of a torn block is
                        // stale but structurally plausible; we keep what
                        // parses — data comparison decides corruption).
                    }
                    let mut ptr_changed = false;
                    for d in inode.direct.iter_mut() {
                        if *d != 0 && (*d < g.data_start || *d >= g.num_blocks) {
                            *d = 0;
                            report.pointers_cleared += 1;
                            ptr_changed = true;
                        }
                    }
                    if inode.indirect != 0
                        && (inode.indirect < g.data_start || inode.indirect >= g.num_blocks)
                    {
                        inode.indirect = 0;
                        report.pointers_cleared += 1;
                        ptr_changed = true;
                    }
                    if ptr_changed {
                        data[off..off + INODE_BYTES].copy_from_slice(&inode.encode());
                        changed = true;
                    }
                    live_inodes.push(ino);
                }
                Err(()) => {
                    data[off..off + INODE_BYTES].copy_from_slice(&[0u8; INODE_BYTES]);
                    report.inodes_cleared += 1;
                    changed = true;
                }
            }
        }
        if changed || torn {
            write_block(disk, iblock, &data, &mut report);
        }
    }

    // Pass 2: directory entries must reference live inodes.
    let is_live = |ino: u64, live: &[u64]| live.binary_search(&ino).is_ok();
    live_inodes.sort_unstable();
    let mut dir_inos: Vec<u64> = Vec::new();
    for &ino in &live_inodes {
        let (blk, off) = g.inode_location(ino);
        let Some(iblock) = read_block(disk, blk, &mut report) else {
            continue;
        };
        if let Ok(Some(inode)) = Inode::decode(&iblock[off..off + INODE_BYTES]) {
            if inode.itype == FileType::Dir {
                dir_inos.push(ino);
            }
        }
    }
    for &dino in &dir_inos {
        let (blk, off) = g.inode_location(dino);
        let Some(iblock) = read_block(disk, blk, &mut report) else {
            continue;
        };
        let Ok(Some(dir)) = Inode::decode(&iblock[off..off + INODE_BYTES]) else {
            continue;
        };
        let nblocks = dir.size.div_ceil(BLOCK_SIZE as u64).min(NDIRECT as u64);
        for bi in 0..nblocks {
            let db = dir.direct[bi as usize];
            if db == 0 {
                continue;
            }
            let Some(mut data) = read_block(disk, db, &mut report) else {
                continue;
            };
            let mut changed = false;
            for slot in 0..DIRENTS_PER_BLOCK {
                let eoff = slot * DIRENT_BYTES;
                if let Some(e) = DirEntry::decode(&data[eoff..eoff + DIRENT_BYTES]) {
                    if e.ino >= g.num_inodes || !is_live(e.ino, &live_inodes) {
                        data[eoff..eoff + DIRENT_BYTES].copy_from_slice(&[0u8; DIRENT_BYTES]);
                        report.dirents_removed += 1;
                        changed = true;
                    }
                }
            }
            if changed {
                write_block(disk, db, &data, &mut report);
            }
        }
    }

    // Pass 3: rebuild the bitmap from reachable blocks; count torn data
    // blocks along the way.
    let mut bitmap = vec![0u8; (g.bitmap_len as usize) * BLOCK_SIZE];
    let mark = |b: u64, bitmap: &mut Vec<u8>| {
        let (blk_idx, bit) = g.bitmap_location(b);
        let base = (blk_idx - g.bitmap_start) as usize * BLOCK_SIZE;
        bitmap[base + bit / 8] |= 1 << (bit % 8);
    };
    for b in 0..g.data_start {
        mark(b, &mut bitmap);
    }
    for &ino in &live_inodes {
        let (blk, off) = g.inode_location(ino);
        let Some(iblock) = read_block(disk, blk, &mut report) else {
            continue;
        };
        let Ok(Some(inode)) = Inode::decode(&iblock[off..off + INODE_BYTES]) else {
            continue;
        };
        for &d in &inode.direct {
            if d != 0 {
                mark(d, &mut bitmap);
                if disk.is_torn(d) {
                    report.torn_data_blocks += 1;
                }
            }
        }
        if inode.indirect != 0 {
            mark(inode.indirect, &mut bitmap);
            // An unreadable indirect block loses its children from the
            // bitmap (they leak back to free); the scan keeps going.
            let Some(idata) = read_block(disk, inode.indirect, &mut report) else {
                continue;
            };
            for i in 0..NINDIRECT {
                let v = u64::from_le_bytes(idata[i * 8..i * 8 + 8].try_into().expect("8"));
                if v >= g.data_start && v < g.num_blocks {
                    mark(v, &mut bitmap);
                }
            }
        }
    }
    for (i, chunk) in bitmap.chunks(BLOCK_SIZE).enumerate() {
        let blk = g.bitmap_start + i as u64;
        let current = read_block(disk, blk, &mut report);
        if current.as_deref() != Some(chunk) {
            report.bitmap_rebuilt = true;
            write_block(disk, blk, chunk, &mut report);
        }
    }
    Ok(report)
}

/// Convenience: run fsck and return the geometry alongside the report.
///
/// # Errors
///
/// As [`repair`].
pub fn repair_with_geometry(disk: &mut SimDisk) -> Result<(DiskGeometry, FsckReport), FsckError> {
    let sb = Superblock::decode(disk.peek(0)).ok_or(FsckError::BadSuperblock)?;
    let report = repair(disk)?;
    Ok((sb.geometry, report))
}
