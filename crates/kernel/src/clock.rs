//! Simulated time accounting and the cost model behind Table 2.
//!
//! Every kernel operation charges simulated time: interpreter steps for the
//! data paths, fixed CPU costs for syscall entry and per-page processing,
//! protection-window toggles, and disk service times (the disk computes its
//! own; the clock just advances to completion for synchronous waits).
//!
//! The default constants are calibrated for a mid-1990s workstation (the
//! paper's DEC 3000/600, a 175 MHz Alpha): what matters for reproducing the
//! *shape* of Table 2 is the ratio between CPU/memory costs and mechanical
//! disk latency.

use rio_disk::SimTime;

/// Per-operation cost constants (nanosecond/microsecond granularity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Nanoseconds per interpreted instruction (data-path work; 8 KB copied
    /// in 64-byte unrolled blocks of 21 instructions ≈ 107 µs/page at
    /// 40 ns/step — the same ~75 MB/s kernel memcpy the pre-unrolled loop
    /// modelled at 15 ns/step, so page-copy timings are unchanged).
    pub cpu_ns_per_step: u64,
    /// Fixed syscall entry/exit cost, microseconds.
    pub syscall_overhead_us: u64,
    /// Per-path-component lookup cost, microseconds.
    pub namei_component_us: u64,
    /// Per-page bookkeeping cost beyond the copy itself (page lookup, user
    /// crossing, dirty tracking), microseconds.
    pub page_op_cpu_us: u64,
    /// Cost of opening+closing one protection window (in-kernel PTE flip;
    /// no syscall needed — §6 explains why Rio beats the 7% of
    /// \[Sullivan91a\]), microseconds.
    pub protection_toggle_us: u64,
    /// Extra per-store CPU cost multiplier in code-patching mode, applied
    /// to interpreted steps (the 20–50% band of §2.1).
    pub code_patch_step_penalty_pct: u64,
}

impl CostModel {
    /// Calibrated 1996-workstation defaults (see `rio-harness::calibration`
    /// for the Table 2 fit).
    pub fn paper() -> Self {
        CostModel {
            cpu_ns_per_step: 40,
            syscall_overhead_us: 120,
            namei_component_us: 60,
            page_op_cpu_us: 350,
            protection_toggle_us: 2,
            code_patch_step_penalty_pct: 35,
        }
    }

    /// Zero-cost model: isolates disk time in unit tests.
    pub fn free() -> Self {
        CostModel {
            cpu_ns_per_step: 0,
            syscall_overhead_us: 0,
            namei_component_us: 0,
            page_op_cpu_us: 0,
            protection_toggle_us: 0,
            code_patch_step_penalty_pct: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

/// The simulated wall clock plus cumulative accounting.
#[derive(Debug, Clone)]
pub struct Clock {
    now: SimTime,
    /// Sub-microsecond CPU remainder (interpreter steps accumulate in ns).
    ns_residue: u64,
    /// Total CPU time charged.
    cpu_time: SimTime,
    /// Total time spent waiting for the disk.
    disk_wait: SimTime,
    /// Code-patching mode: every kernel CPU charge pays the per-store
    /// check penalty (§2.1 — patched checks pervade kernel code, not just
    /// the copy loops).
    patched: bool,
    /// Deferred-wait mode (multi-client scheduling): synchronous disk
    /// waits are *recorded* instead of advancing the clock, so the
    /// scheduler can overlap one client's disk wait with another
    /// client's CPU time. Off by default — single-client paths are
    /// byte-identical to the pre-scheduler kernel.
    deferred: bool,
    /// Latest deferred wake-up time recorded since the last
    /// [`Clock::take_deferred`].
    deferred_until: Option<SimTime>,
    costs: CostModel,
}

impl Clock {
    /// A clock at time zero with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        Clock {
            now: SimTime::ZERO,
            ns_residue: 0,
            cpu_time: SimTime::ZERO,
            disk_wait: SimTime::ZERO,
            patched: false,
            deferred: false,
            deferred_until: None,
            costs,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Total CPU time charged so far.
    pub fn cpu_time(&self) -> SimTime {
        self.cpu_time
    }

    /// Total synchronous disk-wait time so far.
    pub fn disk_wait(&self) -> SimTime {
        self.disk_wait
    }

    /// Enables or disables the code-patching CPU penalty.
    pub fn set_patched(&mut self, patched: bool) {
        self.patched = patched;
    }

    fn penalized_us(&self, us: u64) -> u64 {
        if self.patched {
            us + us * self.costs.code_patch_step_penalty_pct / 100
        } else {
            us
        }
    }

    fn charge(&mut self, t: SimTime) {
        self.now += t;
        self.cpu_time += t;
        self.publish();
    }

    /// Publishes the current simulated time to the observability layer so
    /// events emitted anywhere (including clock-less layers like the
    /// memory bus) carry deterministic timestamps. One thread-local read
    /// when tracing is off.
    fn publish(&self) {
        if rio_obs::is_enabled() {
            rio_obs::set_sim_ns(self.now.as_micros().saturating_mul(1_000));
        }
    }

    /// Charges `n` interpreted instructions, with the code-patching penalty
    /// when `patched` is set.
    pub fn charge_steps(&mut self, n: u64, patched: bool) {
        let mut ns = n * self.costs.cpu_ns_per_step;
        if patched {
            ns += ns * self.costs.code_patch_step_penalty_pct / 100;
        }
        ns += self.ns_residue;
        self.ns_residue = ns % 1_000;
        self.charge(SimTime::from_micros(ns / 1_000));
    }

    /// Charges a fixed number of microseconds of CPU time.
    pub fn charge_us(&mut self, us: u64) {
        self.charge(SimTime::from_micros(us));
    }

    /// Charges one syscall entry (kernel CPU: pays the patch penalty).
    pub fn charge_syscall(&mut self) {
        let us = self.penalized_us(self.costs.syscall_overhead_us);
        self.charge_us(us);
    }

    /// Charges a path lookup of `components` components (kernel CPU).
    pub fn charge_namei(&mut self, components: u64) {
        let us = self.penalized_us(self.costs.namei_component_us * components);
        self.charge_us(us);
    }

    /// Charges per-page bookkeeping (kernel CPU).
    pub fn charge_page_op(&mut self) {
        let us = self.penalized_us(self.costs.page_op_cpu_us);
        self.charge_us(us);
    }

    /// Charges one protection-window toggle.
    pub fn charge_window(&mut self) {
        self.charge_us(self.costs.protection_toggle_us);
    }

    /// Blocks until `t` (synchronous disk wait); no-op if `t` has passed.
    ///
    /// In deferred-wait mode the clock does **not** advance: the wake-up
    /// time is recorded for [`Clock::take_deferred`] so a scheduler can
    /// block just this client and run another one in the meantime. The
    /// wait is then not double-charged as global `disk_wait` — it
    /// overlaps other clients' CPU time.
    pub fn wait_until(&mut self, t: SimTime) {
        if self.deferred {
            if t > self.now {
                self.deferred_until = Some(self.deferred_until.map_or(t, |d| d.max(t)));
            }
            return;
        }
        if t > self.now {
            self.disk_wait += t.saturating_sub(self.now);
            self.now = t;
            self.publish();
        }
    }

    /// Switches deferred-wait mode on or off, clearing any pending
    /// deferred wake-up.
    pub fn set_deferred_waits(&mut self, on: bool) {
        self.deferred = on;
        self.deferred_until = None;
    }

    /// Takes the latest wake-up time recorded by a deferred
    /// [`Clock::wait_until`], if any, resetting it.
    pub fn take_deferred(&mut self) -> Option<SimTime> {
        self.deferred_until.take()
    }

    /// Whether a deferred wake-up is pending, without consuming it.
    ///
    /// Continuation phase machines use this to decide mid-phase whether
    /// the work they just did hit a block point (and they should yield)
    /// without disturbing the recorded wake-up the scheduler will take.
    pub fn deferred_pending(&self) -> bool {
        self.deferred_until.is_some()
    }

    /// Advances the wall clock without charging CPU (idle time between
    /// workload phases).
    ///
    /// This is the raw *hardware* clock hop: no kernel daemon runs inside
    /// the skipped gap. Workload code should call `Kernel::idle_until`
    /// instead, which steps the `update`/idle-writeback/checkpoint
    /// daemons at their due instants across the gap.
    pub fn idle_until(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
            self.publish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_accumulate_with_residue() {
        let mut c = Clock::new(CostModel {
            cpu_ns_per_step: 15,
            ..CostModel::free()
        });
        // 100 steps = 1500 ns = 1 µs + 500 ns residue.
        c.charge_steps(100, false);
        assert_eq!(c.now().as_micros(), 1);
        // Another 100 steps: 1500 + 500 = 2000 ns → +2 µs.
        c.charge_steps(100, false);
        assert_eq!(c.now().as_micros(), 3);
        assert_eq!(c.cpu_time().as_micros(), 3);
    }

    #[test]
    fn code_patch_penalty_applies() {
        let costs = CostModel {
            cpu_ns_per_step: 100,
            code_patch_step_penalty_pct: 50,
            ..CostModel::free()
        };
        let mut plain = Clock::new(costs);
        let mut patched = Clock::new(costs);
        plain.charge_steps(1000, false);
        patched.charge_steps(1000, true);
        assert_eq!(plain.now().as_micros(), 100);
        assert_eq!(patched.now().as_micros(), 150);
    }

    #[test]
    fn wait_until_counts_disk_wait() {
        let mut c = Clock::new(CostModel::free());
        c.charge_us(10);
        c.wait_until(SimTime::from_micros(50));
        assert_eq!(c.now().as_micros(), 50);
        assert_eq!(c.disk_wait().as_micros(), 40);
        // Waiting for the past is free.
        c.wait_until(SimTime::from_micros(20));
        assert_eq!(c.now().as_micros(), 50);
    }

    #[test]
    fn deferred_waits_record_instead_of_advancing() {
        let mut c = Clock::new(CostModel::free());
        c.set_deferred_waits(true);
        c.wait_until(SimTime::from_micros(50));
        c.wait_until(SimTime::from_micros(30)); // earlier: max wins
        assert_eq!(c.now(), SimTime::ZERO, "deferred wait must not advance");
        assert_eq!(c.disk_wait(), SimTime::ZERO);
        assert_eq!(c.take_deferred(), Some(SimTime::from_micros(50)));
        assert_eq!(c.take_deferred(), None, "take resets");
        // Back to normal mode: waits advance again.
        c.set_deferred_waits(false);
        c.wait_until(SimTime::from_micros(10));
        assert_eq!(c.now().as_micros(), 10);
    }

    #[test]
    fn idle_does_not_charge_cpu() {
        let mut c = Clock::new(CostModel::paper());
        c.idle_until(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
        assert_eq!(c.cpu_time(), SimTime::ZERO);
        assert_eq!(c.disk_wait(), SimTime::ZERO);
    }

    #[test]
    fn named_charges_use_model_constants() {
        let mut c = Clock::new(CostModel::paper());
        c.charge_syscall();
        assert_eq!(
            c.now().as_micros(),
            CostModel::paper().syscall_overhead_us
        );
        let before = c.now();
        c.charge_namei(3);
        assert_eq!(
            c.now().saturating_sub(before).as_micros(),
            3 * CostModel::paper().namei_component_us
        );
    }
}
