//! The eight file-system configurations of Table 2 (and the three systems
//! of Table 1), expressed as [`Policy`] values over the shared kernel.
//!
//! | constructor | Table 2 row | data permanent |
//! |---|---|---|
//! | [`memfs`] | Memory File System | never |
//! | [`ufs_delayed`] | UFS, delayed data + metadata | 0–30 s, async |
//! | [`advfs`] | AdvFS (journaled metadata) | 0–30 s, async |
//! | [`ufs_default`] | UFS | data 64 KB async; metadata sync |
//! | [`ufs_write_close`] | UFS write-through on close | close, sync |
//! | [`ufs_write_write`] | UFS write-through on write | write, sync |
//! | [`rio_without_protection`] | Rio without protection | write, sync |
//! | [`rio_with_protection`] | Rio with protection | write, sync |
//!
//! # Example
//!
//! ```
//! use rio_baselines::{table2_policies, rio_with_protection};
//! use rio_kernel::{Kernel, KernelConfig};
//!
//! # fn main() -> Result<(), rio_kernel::KernelError> {
//! // Spin up the full Table 2 fleet.
//! for policy in table2_policies() {
//!     let mut k = Kernel::mkfs_and_mount(&KernelConfig::small(policy))?;
//!     let fd = k.create("/probe")?;
//!     k.write(fd, b"hello")?;
//!     k.close(fd)?;
//! }
//! # Ok(())
//! # }
//! ```

use rio_core::RioMode;
use rio_disk::SimTime;
use rio_kernel::{DataPolicy, MetadataPolicy, Policy};

/// The 30-second `update` interval classic Unix kernels use.
pub const UPDATE_INTERVAL: SimTime = SimTime(30_000_000);

/// UFS's asynchronous write-clustering threshold (64 KB).
pub const UFS_CLUSTER_BYTES: u64 = 64 * 1024;

/// Memory File System \[McKusick90\]: entirely memory-resident, no disk I/O,
/// no crash survival. Table 2's optimal-performance yardstick.
pub fn memfs() -> Policy {
    Policy {
        name: "Memory File System".to_owned(),
        data: DataPolicy::Never,
        metadata: MetadataPolicy::Never,
        fsync_on_close: false,
        fsync_writes_disk: false,
        update_interval: None,
        panic_flushes: false,
        rio: None,
        throttle_dirty_bytes: None,
        idle_writeback_after: None,
        checkpoint_interval: None,
    }
}

/// The optimal "no-order" UFS of \[Ganger94\]: both data and metadata delayed
/// until the next `update`. Fast, but a crash loses up to 30 seconds of
/// *everything*.
pub fn ufs_delayed() -> Policy {
    Policy {
        name: "UFS, delayed data and metadata".to_owned(),
        data: DataPolicy::Delayed,
        metadata: MetadataPolicy::Delayed,
        fsync_on_close: false,
        fsync_writes_disk: true,
        update_interval: Some(UPDATE_INTERVAL),
        panic_flushes: true,
        rio: None,
        throttle_dirty_bytes: Some(2 * 1024 * 1024),
        idle_writeback_after: None,
        checkpoint_interval: None,
    }
}

/// AdvFS: journaled metadata (sequential log writes), async data.
pub fn advfs() -> Policy {
    Policy {
        name: "AdvFS (log metadata updates)".to_owned(),
        data: DataPolicy::Delayed,
        metadata: MetadataPolicy::Journal,
        fsync_on_close: false,
        fsync_writes_disk: true,
        update_interval: Some(UPDATE_INTERVAL),
        panic_flushes: true,
        rio: None,
        throttle_dirty_bytes: Some(2 * 1024 * 1024),
        idle_writeback_after: None,
        checkpoint_interval: None,
    }
}

/// Default Digital Unix UFS: data asynchronous at 64 KB clusters (and on
/// non-sequential writes, and every 30 s), metadata synchronous for
/// ordering \[Ganger94\].
pub fn ufs_default() -> Policy {
    Policy {
        name: "UFS".to_owned(),
        data: DataPolicy::AsyncClustered {
            cluster_bytes: UFS_CLUSTER_BYTES,
        },
        metadata: MetadataPolicy::Sync,
        fsync_on_close: false,
        fsync_writes_disk: true,
        update_interval: Some(UPDATE_INTERVAL),
        panic_flushes: true,
        rio: None,
        throttle_dirty_bytes: Some(2 * 1024 * 1024),
        idle_writeback_after: None,
        checkpoint_interval: None,
    }
}

/// UFS with write-through on close: `fsync` on every file close.
pub fn ufs_write_close() -> Policy {
    Policy {
        name: "UFS write-through on close".to_owned(),
        data: DataPolicy::AsyncClustered {
            cluster_bytes: UFS_CLUSTER_BYTES,
        },
        metadata: MetadataPolicy::Sync,
        fsync_on_close: true,
        fsync_writes_disk: true,
        update_interval: Some(UPDATE_INTERVAL),
        panic_flushes: true,
        rio: None,
        throttle_dirty_bytes: Some(2 * 1024 * 1024),
        idle_writeback_after: None,
        checkpoint_interval: None,
    }
}

/// UFS with write-through on write: every `write` synchronous ("sync"
/// mount plus fsync on close). The only non-Rio row with Rio's reliability
/// guarantee, and the Table 1 disk-based system.
pub fn ufs_write_write() -> Policy {
    Policy {
        name: "UFS write-through on write".to_owned(),
        data: DataPolicy::WriteThrough,
        metadata: MetadataPolicy::Sync,
        fsync_on_close: true,
        fsync_writes_disk: true,
        update_interval: Some(UPDATE_INTERVAL),
        panic_flushes: true,
        rio: None,
        throttle_dirty_bytes: Some(2 * 1024 * 1024),
        idle_writeback_after: None,
        checkpoint_interval: None,
    }
}

/// Rio without protection: registry + warm reboot only (Table 1 middle
/// column).
pub fn rio_without_protection() -> Policy {
    Policy::rio(RioMode::Unprotected)
}

/// Rio with protection: the full system (Table 1 right column).
pub fn rio_with_protection() -> Policy {
    Policy::rio(RioMode::Protected)
}

/// Rio with the code-patching protection fallback (§2.1 ablation).
pub fn rio_code_patched() -> Policy {
    Policy::rio(RioMode::CodePatched)
}

/// A Phoenix-like checkpointing configuration (\[Gait90\], compared in §6):
/// memory-resident with warm reboot, but writes only become recoverable at
/// periodic checkpoints (default: every 30 seconds, matching its
/// checkpoint-oriented design).
pub fn phoenix_checkpointed() -> Policy {
    Policy::phoenix(RioMode::Protected, SimTime::from_secs(30))
}

/// The eight Table 2 rows, in the paper's order.
pub fn table2_policies() -> Vec<Policy> {
    vec![
        memfs(),
        ufs_delayed(),
        advfs(),
        ufs_default(),
        ufs_write_close(),
        ufs_write_write(),
        rio_without_protection(),
        rio_with_protection(),
    ]
}

/// The "Data Permanent" column of Table 2, aligned with
/// [`table2_policies`].
pub fn table2_permanence_labels() -> Vec<&'static str> {
    vec![
        "never",
        "after 0-30 seconds, asynchronous",
        "after 0-30 seconds, asynchronous",
        "data after 64 KB, async; metadata sync",
        "after close, synchronous",
        "after write, synchronous",
        "after write, synchronous",
        "after write, synchronous",
    ]
}

/// The three Table 1 systems, in the paper's column order.
pub fn table1_policies() -> Vec<Policy> {
    vec![
        ufs_write_write(),
        rio_without_protection(),
        rio_with_protection(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_kernel::{Kernel, KernelConfig, PanicReason};

    #[test]
    fn eight_rows_with_unique_names() {
        let ps = table2_policies();
        assert_eq!(ps.len(), 8);
        let mut names: Vec<_> = ps.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(table2_permanence_labels().len(), 8);
    }

    #[test]
    fn only_rio_rows_enable_rio() {
        for (i, p) in table2_policies().iter().enumerate() {
            assert_eq!(p.rio_enabled(), i >= 6, "{}", p.name);
        }
    }

    #[test]
    fn synchronous_reliability_rows_match() {
        // Rows claiming "after write, synchronous" must actually make a
        // completed write durable across a crash (with their native
        // recovery path).
        for policy in [ufs_write_write(), rio_with_protection()] {
            let config = KernelConfig::small(policy.clone());
            let mut k = Kernel::mkfs_and_mount(&config).unwrap();
            let fd = k.create("/d.bin").unwrap();
            let data = [0xABu8; 10_000];
            k.write(fd, &data).unwrap();
            k.crash_now(PanicReason::Watchdog);
            let (image, disk) = k.into_crash_artifacts();
            let mut k2 = if policy.rio_enabled() {
                Kernel::warm_boot(&config, &image, disk).unwrap().0
            } else {
                Kernel::cold_boot(&config, disk).unwrap().0
            };
            assert_eq!(
                k2.file_contents("/d.bin").unwrap(),
                data,
                "{} must not lose a completed write",
                policy.name
            );
        }
    }

    #[test]
    fn delayed_ufs_loses_recent_data_on_crash() {
        let config = KernelConfig::small(ufs_delayed());
        let mut k = Kernel::mkfs_and_mount(&config).unwrap();
        let fd = k.create("/recent.bin").unwrap();
        k.write(fd, &vec![1u8; 4096]).unwrap();
        // Crash before the 30-second update fires.
        k.crash_now(PanicReason::Watchdog);
        // Note: panic_flushes pushes dirty buffers — but queued writes that
        // never start are lost at the instant crash; simulate the harness
        // treating the panic flush as racing the crash by checking the
        // recovered state is *at most* partially present.
        let (_image, disk) = k.into_crash_artifacts();
        let (mut k2, _) = Kernel::cold_boot(&config, disk).unwrap();
        // The file may or may not have made it out (panic flush), but the
        // system must mount cleanly either way.
        let _ = k2.readdir("/").unwrap();
    }

    #[test]
    fn memfs_never_touches_the_disk() {
        let config = KernelConfig::small(memfs());
        let mut k = Kernel::mkfs_and_mount(&config).unwrap();
        for i in 0..4 {
            let fd = k.create(&format!("/f{i}")).unwrap();
            k.write(fd, &vec![i as u8; 9000]).unwrap();
            k.close(fd).unwrap();
        }
        assert_eq!(k.machine.disk.stats().writes, 0);
    }

    #[test]
    fn advfs_journals_metadata_sequentially() {
        let config = KernelConfig::small(advfs());
        let mut k = Kernel::mkfs_and_mount(&config).unwrap();
        for i in 0..5 {
            let fd = k.create(&format!("/j{i}")).unwrap();
            k.write(fd, b"x").unwrap();
            k.close(fd).unwrap();
        }
        // Metadata updates produced journal writes (async), not sync waits.
        assert!(k.machine.disk.stats().writes > 0);
        assert_eq!(k.stats().sync_waits, 0);
    }

    #[test]
    fn write_through_waits_synchronously() {
        let config = KernelConfig::small(ufs_write_write());
        let mut k = Kernel::mkfs_and_mount(&config).unwrap();
        let fd = k.create("/s").unwrap();
        k.write(fd, &vec![0u8; 8192]).unwrap();
        assert!(k.stats().sync_waits > 0);
        assert!(k.machine.clock.disk_wait() > SimTime::ZERO);
    }

    #[test]
    fn rio_is_dramatically_faster_than_write_through() {
        // A miniature Table 2 shape check: same workload, compare clocks.
        let run = |policy: Policy| {
            let config = KernelConfig::small(policy);
            let mut k = Kernel::mkfs_and_mount(&config).unwrap();
            for i in 0..10 {
                let fd = k.create(&format!("/f{i}")).unwrap();
                k.write(fd, &vec![7u8; 16384]).unwrap();
                k.close(fd).unwrap();
            }
            k.machine.clock.now()
        };
        let rio = run(rio_with_protection());
        let wt = run(ufs_write_write());
        assert!(
            wt.as_micros() > rio.as_micros() * 4,
            "write-through {wt} should be >4x Rio {rio}"
        );
    }
}
