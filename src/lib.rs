//! # rio — a reproduction of the Rio file cache (ASPLOS 1996)
//!
//! *"The Rio File Cache: Surviving Operating System Crashes"*, Chen, Ng,
//! Chandra, Aycock, Rajamani, Lowell — University of Michigan.
//!
//! Rio makes the in-memory file cache as safe as disk by (1) write-protecting
//! file-cache pages against wild kernel stores, including closing the KSEG
//! physical-address bypass, and (2) performing a **warm reboot** after a
//! crash that recovers file data straight out of RAM using a protected
//! **registry**. With reliability-induced disk writes turned off, every
//! `write` is synchronously permanent at memory speed.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`mem`] | `rio-mem` | simulated physical memory, TLB/KSEG protection |
//! | [`cpu`] | `rio-cpu` | kernel ISA, assembler, interpreter |
//! | [`det`] | `rio-det` | deterministic PRNG, seed derivation, property-test harness |
//! | [`disk`] | `rio-disk` | simulated disk with timing + torn writes |
//! | [`kernel`] | `rio-kernel` | simulated Unix kernel (UFS-like FS, buffer cache, UBC) |
//! | [`core`] | `rio-core` | **the paper's contribution**: registry, protection, warm reboot |
//! | [`baselines`] | `rio-baselines` | MemFS / UFS variants / AdvFS sync policies |
//! | [`faults`] | `rio-faults` | the 13 fault models and the crash campaign |
//! | [`workloads`] | `rio-workloads` | memTest, Andrew, cp+rm, Sdet |
//! | [`harness`] | `rio-harness` | Table 1 / Table 2 / MTTF report generators |
//! | [`obs`] | `rio-obs` | deterministic event tracing + counter registries |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete crash-and-recover walkthrough:
//! build a Rio machine, write files, crash it with an injected fault, warm
//! reboot, and observe that every synchronously-written byte survived.

pub use rio_baselines as baselines;
pub use rio_core as core;
pub use rio_cpu as cpu;
pub use rio_det as det;
pub use rio_disk as disk;
pub use rio_faults as faults;
pub use rio_harness as harness;
pub use rio_kernel as kernel;
pub use rio_mem as mem;
pub use rio_obs as obs;
pub use rio_workloads as workloads;
